package sched

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
)

// appendRaw frames body as a journal record and appends it verbatim,
// bypassing Append's version stamping — for records replay must skip.
func appendRaw(t *testing.T, dir string, body []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, journalFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := checkpoint.Snapshot{Algorithm: "ATDCA", Round: 3, Payload: []byte{1, 2, 3}}
	rep := &core.RunReport{Algorithm: core.ATDCA, WallTime: 1.5, Attempts: 1, ResumedFromRound: 3}
	records := []Record{
		{Type: recSubmitted, Job: "job-1", Request: json.RawMessage(`{"algorithm":"atdca"}`), CacheKey: "k1"},
		{Type: recStarted, Job: "job-1", Attempt: 1},
		{Type: recCheckpointed, Job: "job-1", Round: 3, Snapshot: checkpoint.Encode(snap)},
		{Type: recSubmitted, Job: "job-2", Request: json.RawMessage(`{"algorithm":"pct"}`)},
		{Type: recStarted, Job: "job-1", Attempt: 2},
		{Type: recFinished, Job: "job-1", State: string(StateCompleted), Report: marshalReport(rep)},
	}
	for _, rec := range records {
		if err := jl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	jobs, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	j1 := jobs[0]
	if j1.ID != "job-1" || !j1.Finished || j1.State != StateCompleted || j1.Attempts != 2 {
		t.Fatalf("job-1 folded wrong: %+v", j1)
	}
	if j1.Report == nil || j1.Report.WallTime != 1.5 || j1.Report.ResumedFromRound != 3 {
		t.Fatalf("job-1 report did not round-trip: %+v", j1.Report)
	}
	if j1.Snapshot != nil {
		t.Fatal("finished job kept a resume snapshot")
	}
	j2 := jobs[1]
	if j2.ID != "job-2" || j2.Finished || string(j2.Request) != `{"algorithm":"pct"}` {
		t.Fatalf("job-2 folded wrong: %+v", j2)
	}

	// Reopening an existing journal appends after the old records.
	jl, err = OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap2 := checkpoint.Snapshot{Algorithm: "PCT", Round: 1, Payload: []byte{9}}
	if err := jl.Append(Record{Type: recCheckpointed, Job: "job-2", Round: 1, Snapshot: checkpoint.Encode(snap2)}); err != nil {
		t.Fatal(err)
	}
	jl.Close()
	jobs, err = ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[1].Snapshot == nil || jobs[1].Snapshot.Round != 1 {
		t.Fatalf("append-after-reopen lost state: %+v", jobs[1])
	}
}

func TestReplayMissingJournal(t *testing.T) {
	jobs, err := ReplayJournal(t.TempDir())
	if err != nil || jobs != nil {
		t.Fatalf("missing journal: jobs=%v err=%v, want nil/nil", jobs, err)
	}
}

// A torn final write — the crash artifact the journal exists to survive —
// must truncate the readable log without dropping earlier records.
func TestReplayTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	jl, _ := OpenJournal(dir)
	jl.Append(Record{Type: recSubmitted, Job: "job-1"})
	jl.Append(Record{Type: recSubmitted, Job: "job-2"})
	jl.Close()
	path := filepath.Join(dir, journalFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(b) - 1; cut > len(b)-40; cut-- {
		if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jobs, err := ReplayJournal(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(jobs) != 1 || jobs[0].ID != "job-1" {
			t.Fatalf("cut=%d: replayed %+v, want exactly job-1", cut, jobs)
		}
	}
}

// A checksum-failing record ends the readable log; records before it
// survive, and replay neither panics nor errors.
func TestReplayCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	jl, _ := OpenJournal(dir)
	jl.Append(Record{Type: recSubmitted, Job: "job-1"})
	jl.Append(Record{Type: recSubmitted, Job: "job-2"})
	jl.Append(Record{Type: recSubmitted, Job: "job-3"})
	jl.Close()
	path := filepath.Join(dir, journalFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second record's body (well past the header
	// and the first record).
	mid := journalHeaderLen + (len(b)-journalHeaderLen)/2
	b[mid] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 || jobs[0].ID != "job-1" || len(jobs) >= 3 {
		t.Fatalf("corrupt middle record: replayed %d jobs (%+v)", len(jobs), jobs)
	}
}

// A record from an unknown schema version is validly framed, so replay
// skips it and keeps folding the records around it.
func TestReplaySkipsUnknownRecordVersion(t *testing.T) {
	dir := t.TempDir()
	jl, _ := OpenJournal(dir)
	jl.Append(Record{Type: recSubmitted, Job: "job-1"})
	jl.Close()
	appendRaw(t, dir, []byte(`{"v":99,"type":"submitted","job":"job-9","future_field":true}`))
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jl.Append(Record{Type: recFinished, Job: "job-1", State: string(StateFailed), Error: "boom"})
	jl.Close()

	jobs, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "job-1" {
		t.Fatalf("unknown-version record leaked into the fold: %+v", jobs)
	}
	if !jobs[0].Finished || jobs[0].State != StateFailed || jobs[0].Error != "boom" {
		t.Fatalf("record after the skipped one was lost: %+v", jobs[0])
	}
}

// A damaged header is unrecoverable: nothing after it can be trusted.
func TestReplayRejectsBadHeader(t *testing.T) {
	dir := t.TempDir()
	jl, _ := OpenJournal(dir)
	jl.Append(Record{Type: recSubmitted, Job: "job-1"})
	jl.Close()
	path := filepath.Join(dir, journalFileName)
	b, _ := os.ReadFile(path)
	b[0] ^= 0xff
	os.WriteFile(path, b, 0o644)
	if _, err := ReplayJournal(dir); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := OpenJournal(dir); err == nil {
		t.Fatal("OpenJournal accepted a bad header")
	}
}

// A checkpointed record whose snapshot frame is damaged keeps the
// previous good snapshot: an unreadable checkpoint is indistinguishable
// from no checkpoint.
func TestReplayIgnoresCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	jl, _ := OpenJournal(dir)
	jl.Append(Record{Type: recSubmitted, Job: "job-1"})
	good := checkpoint.Encode(checkpoint.Snapshot{Algorithm: "ATDCA", Round: 2, Payload: []byte{7}})
	jl.Append(Record{Type: recCheckpointed, Job: "job-1", Round: 2, Snapshot: good})
	bad := checkpoint.Encode(checkpoint.Snapshot{Algorithm: "ATDCA", Round: 3, Payload: []byte{8}})
	bad[len(bad)-1] ^= 0xff // break the snapshot's own CRC
	jl.Append(Record{Type: recCheckpointed, Job: "job-1", Round: 3, Snapshot: bad})
	jl.Close()

	jobs, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Snapshot == nil || jobs[0].Snapshot.Round != 2 {
		t.Fatalf("fold did not keep the last good snapshot: %+v", jobs)
	}
}

// checkpointResumeSpec is a checkpointed fault job whose first attempt
// dies mid-run, calibrated so the retry resumes from a checkpointed round.
func checkpointResumeSpec(t testing.TB) JobSpec {
	tiny, _ := testScenes(t)
	spec := JobSpec{
		Mode:        ModeRun,
		Algorithm:   core.ATDCA,
		Network:     retryNet(t, 4),
		Cube:        tiny.Cube,
		CubeDigest:  CubeDigest(tiny.Cube),
		Checkpoint:  true,
		MaxAttempts: 3,
		Params:      core.Params{Targets: 4},
	}
	// Scale per-round compute above the fixed checkpoint-write latency
	// (as on any realistically sized scene) and calibrate the crash to
	// the middle of a clean run, so attempt 1 checkpoints some rounds
	// before rank 2 dies.
	spec.Params.WorkScale = 50
	clean, err := core.Run(spec.Network, core.ATDCA, core.Hetero, tiny.Cube, spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	spec.Params.Faults = &fault.Plan{Crashes: []fault.Crash{{Rank: 2, At: clean.WallTime / 2, Attempt: 1}}}
	return spec
}

// End-to-end through the scheduler: a journaled, checkpointed job crashes
// mid-run, the retry resumes from the checkpointed round, and the journal
// replays the whole story — attempts, resume round and final report.
func TestSchedulerJournalsCheckpointedJob(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Journal: jl, RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond})

	spec := checkpointResumeSpec(t)
	spec.JournalPayload = []byte(`{"algorithm":"atdca","checkpoint":true}`)
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j.ID()); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateCompleted {
		t.Fatalf("job settled as %s (err=%v)", j.State(), j.Err())
	}
	rep := j.Report()
	if len(j.Attempts()) != 2 {
		t.Fatalf("attempts = %d, want 2", len(j.Attempts()))
	}
	if rep.ResumedFromRound < 1 || rep.ResumedFromRound >= spec.Params.Targets {
		t.Fatalf("resumed from round %d, want mid-run in [1,%d)", rep.ResumedFromRound, spec.Params.Targets)
	}
	if j.FromCache() {
		t.Fatal("checkpointed job was served from cache")
	}
	s.Close()
	jl.Close()

	jobs, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
	jj := jobs[0]
	if jj.ID != j.ID() || !jj.Finished || jj.State != StateCompleted || jj.Attempts != 2 {
		t.Fatalf("journal story wrong: %+v", jj)
	}
	if string(jj.Request) != string(spec.JournalPayload) {
		t.Fatalf("request document did not round-trip: %q", jj.Request)
	}
	if jj.Report == nil || jj.Report.ResumedFromRound != rep.ResumedFromRound || jj.Report.WallTime != rep.WallTime {
		t.Fatalf("journaled report = %+v, want resume round %d", jj.Report, rep.ResumedFromRound)
	}
}

// Drain semantics: a running job is cancelled without a finished record,
// so a second scheduler over the same journal resumes it — same ID, seeded
// from its last checkpointed round — while a plain Close journals the
// cancellation as terminal.
func TestDrainDefersRunningJobToNextBoot(t *testing.T) {
	_, big := testScenes(t)
	dir := t.TempDir()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Journal: jl})

	spec := JobSpec{
		Mode:       ModeRun,
		Algorithm:  core.ATDCA,
		Network:    retryNet(t, 4),
		Cube:       big.Cube,
		CubeDigest: CubeDigest(big.Cube),
		Checkpoint: true,
		Params:     core.Params{Targets: 8},
	}
	spec.JournalPayload = []byte(`{"algorithm":"atdca","targets":8}`)
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	s.Drain()
	jl.Close()
	if j.State() != StateCancelled {
		t.Fatalf("drained job settled as %s", j.State())
	}
	if _, err := s.Submit(context.Background(), tinySpec(t)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit during/after drain = %v, want ErrClosed", err)
	}

	jobs, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Finished {
		t.Fatalf("drained job journaled as finished: %+v", jobs)
	}

	// Second boot: resume under the original ID and run to completion.
	jl2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Journal: jl2})
	defer func() { s2.Close(); jl2.Close() }()
	resumed, err := s2.SubmitResumed(context.Background(), jobs[0], spec)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ID() != j.ID() {
		t.Fatalf("resumed under id %s, want %s", resumed.ID(), j.ID())
	}
	if _, err := s2.Wait(context.Background(), resumed.ID()); err != nil {
		t.Fatal(err)
	}
	if resumed.State() != StateCompleted {
		t.Fatalf("resumed job settled as %s (err=%v)", resumed.State(), resumed.Err())
	}
	// If the first boot got far enough to checkpoint, the resumed run
	// must start past round zero; either way it completes with targets.
	if jobs[0].Snapshot != nil && resumed.Report().ResumedFromRound == 0 {
		t.Fatalf("journal held round-%d snapshot but the resumed run started from scratch", jobs[0].Snapshot.Round)
	}
	if got := len(resumed.Report().Detection.Targets); got != spec.Params.Targets {
		t.Fatalf("resumed run found %d targets, want %d", got, spec.Params.Targets)
	}
	// Fresh submissions never collide with the recovered ID.
	fresh, err := s2.Submit(context.Background(), tinySpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if jobNumber(fresh.ID()) <= jobNumber(resumed.ID()) {
		t.Fatalf("fresh job id %s did not advance past recovered %s", fresh.ID(), resumed.ID())
	}
}

// A finished job restores as queryable history with its journaled report,
// and a completed cacheable result re-seeds the result cache.
func TestRestoreFinishedJob(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Journal: jl})
	spec := tinySpec(t)
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j.ID()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	jl.Close()

	jobs, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || !jobs[0].Finished || jobs[0].State != StateCompleted {
		t.Fatalf("journal story wrong: %+v", jobs)
	}

	s2 := New(Config{Workers: 1})
	defer s2.Close()
	restored, err := s2.RestoreFinished(jobs[0], spec)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State() != StateCompleted || restored.Report() == nil {
		t.Fatalf("restored job: state=%s report=%v", restored.State(), restored.Report())
	}
	got, err := s2.Job(j.ID())
	if err != nil || got != restored {
		t.Fatalf("restored job not queryable by id: %v", err)
	}
	if _, err := s2.RestoreFinished(jobs[0], spec); err == nil {
		t.Fatal("duplicate restore accepted")
	}
	// The journaled result serves an identical resubmission from cache.
	rerun, err := s2.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Wait(context.Background(), rerun.ID()); err != nil {
		t.Fatal(err)
	}
	if !rerun.FromCache() {
		t.Fatal("restored result did not re-seed the cache")
	}
}

// Jobs lists everything the scheduler knows in ascending job order.
func TestJobsListing(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	var want []string
	for i := 0; i < 3; i++ {
		j, err := s.Submit(context.Background(), tinySpec(t))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, j.ID())
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
	}
	jobs := s.Jobs()
	if len(jobs) != len(want) {
		t.Fatalf("listed %d jobs, want %d", len(jobs), len(want))
	}
	for i, j := range jobs {
		if j.ID() != want[i] {
			t.Fatalf("listing order: got %s at %d, want %s", j.ID(), i, want[i])
		}
	}
}

// ReplayJournalState exposes the replay health counters hyperhetd
// surfaces in /stats: records folded, torn tails truncated, unknown
// schema versions skipped.
func TestReplayStatsCounters(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jl.Append(Record{Type: recSubmitted, Job: "job-1"})
	jl.Append(Record{Type: recFinished, Job: "job-1", State: string(StateCompleted)})
	jl.Close()
	// One validly framed record from a future schema, one torn write.
	appendRaw(t, dir, []byte(`{"v":99,"type":"submitted","job":"job-9"}`))
	f, err := os.OpenFile(filepath.Join(dir, journalFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 9, 9}); err != nil { // partial frame header
		t.Fatal(err)
	}
	f.Close()

	state, err := ReplayJournalState(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := ReplayStats{Records: 2, TornTailTruncations: 1, UnknownVersionSkips: 1}
	if state.Stats != want {
		t.Fatalf("stats = %+v, want %+v", state.Stats, want)
	}
	if len(state.Jobs) != 1 || !state.Jobs[0].Finished {
		t.Fatalf("fold lost the good story: %+v", state.Jobs)
	}
}

// Pipeline records and job records fold into disjoint stories even when
// interleaved in one journal file.
func TestReplayFoldsPipelineRecords(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jl.Append(Record{Type: RecPipelineSubmitted, Pipeline: "pipe-1", Request: []byte(`{"p":1}`)})
	jl.Append(Record{Type: recSubmitted, Job: "job-1"})
	jl.Append(Record{Type: RecPipelineStage, Pipeline: "pipe-1", Stage: "scene", Report: []byte(`{"kind":"scene"}`)})
	jl.Append(Record{Type: RecPipelineStage, Pipeline: "pipe-1", Stage: "atdca", Report: []byte(`{"kind":"analyze"}`)})
	jl.Append(Record{Type: RecPipelineFinished, Pipeline: "pipe-2", State: "completed", Report: []byte(`{"id":"pipe-2"}`)})
	jl.Close()

	state, err := ReplayJournalState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Jobs) != 1 || state.Jobs[0].ID != "job-1" {
		t.Fatalf("jobs = %+v, want exactly job-1", state.Jobs)
	}
	if len(state.Pipelines) != 2 {
		t.Fatalf("pipelines = %d, want 2", len(state.Pipelines))
	}
	p1, p2 := state.Pipelines[0], state.Pipelines[1]
	if p1.ID != "pipe-1" || p1.Finished || len(p1.Stages) != 2 || string(p1.Request) != `{"p":1}` {
		t.Fatalf("pipe-1 fold = %+v", p1)
	}
	if p2.ID != "pipe-2" || !p2.Finished || p2.State != "completed" {
		t.Fatalf("pipe-2 fold = %+v", p2)
	}
}
