package sched

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
)

// guardedConfig builds a scheduler config with the guard pinned to a
// fixed limit so admission decisions are deterministic in tests.
func pinnedGuard(limit int) *guard.Controller {
	return guard.New(guard.Config{
		Limiter: guard.LimiterConfig{Initial: limit, Min: limit, Max: limit},
	})
}

// The shed error type maps onto the sentinels and carries a usable
// Retry-After hint for every admission-failure class.
func TestShedErrorSemantics(t *testing.T) {
	se := &ShedError{Reason: guard.ReasonRate, RetryAfter: 250 * time.Millisecond}
	if !errors.Is(se, ErrShed) {
		t.Fatal("rate shed does not match ErrShed")
	}
	if errors.Is(se, ErrBreakerOpen) {
		t.Fatal("rate shed matches ErrBreakerOpen")
	}
	bo := &ShedError{Reason: guard.ReasonBreakerOpen, RetryAfter: time.Second}
	if !errors.Is(bo, ErrShed) || !errors.Is(bo, ErrBreakerOpen) {
		t.Fatal("breaker denial must match both ErrShed and ErrBreakerOpen")
	}
	if d, ok := RetryAfterHint(se); !ok || d != 250*time.Millisecond {
		t.Fatalf("hint(shed) = %v/%v, want 250ms/true", d, ok)
	}
	if d, ok := RetryAfterHint(ErrQueueFull); !ok || d <= 0 {
		t.Fatalf("hint(queue-full) = %v/%v, want positive default", d, ok)
	}
	if d, ok := RetryAfterHint(ErrClosed); !ok || d <= 0 {
		t.Fatalf("hint(closed) = %v/%v, want positive default", d, ok)
	}
	if _, ok := RetryAfterHint(errors.New("unrelated")); ok {
		t.Fatal("unrelated error produced a hint")
	}
}

// Queued jobs whose deadline passes before dispatch are settled by the
// lazy-expiry path: counted, never handed to a worker, and auditable as
// such in the job document.
func TestGuardExpiredNeverDispatched(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16})
	defer s.Close()
	release := setGate(s)
	defer release()

	blockSpec := tinySpec(t)
	blockSpec.Label = "blocker"
	blocker, err := s.Submit(context.Background(), blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	var doomed []*Job
	for i := 0; i < 3; i++ {
		spec := tinySpec(t)
		spec.Timeout = 20 * time.Millisecond
		j, err := s.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		doomed = append(doomed, j)
	}
	for _, j := range doomed {
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
		if st := j.State(); st != StateCancelled {
			t.Fatalf("expired job %s settled as %s", j.ID(), st)
		}
		if !errors.Is(j.Err(), context.DeadlineExceeded) {
			t.Fatalf("expired job error = %v, want deadline cause", j.Err())
		}
		if !strings.Contains(j.Err().Error(), "expired while queued") {
			t.Fatalf("expired job error = %v, want the expiry message", j.Err())
		}
		status := j.Status()
		if !status.Started.IsZero() || status.Attempts != 0 {
			t.Fatalf("expired job %s was dispatched: %+v", j.ID(), status)
		}
		if status.DeadlineRemainingMS == nil || *status.DeadlineRemainingMS > 0 {
			t.Fatalf("expired job deadline_remaining_ms = %v, want <= 0", status.DeadlineRemainingMS)
		}
	}
	if st := s.Stats(); st.Expired != 3 {
		t.Fatalf("stats.Expired = %d, want 3", st.Expired)
	}
	release()
	if _, err := s.Wait(context.Background(), blocker.ID()); err != nil {
		t.Fatal(err)
	}
}

// The synthetic overload burst: a 4x-queue-depth storm against a pinned
// admission limit. Batch sheds at 0.75x the limit and Interactive at the
// full limit, and priority dispatch drains Interactive first — so the
// Interactive class's success rate AND p99 latency must strictly
// dominate Batch's, while the shed counters balance the arithmetic.
func TestGuardOverloadBurstInteractiveDominatesBatch(t *testing.T) {
	const limit = 12
	s := New(Config{Workers: 1, QueueDepth: 256, Guard: pinnedGuard(limit)})
	defer s.Close()
	release := setGate(s)
	defer release()

	blockSpec := tinySpec(t)
	blockSpec.Label = "blocker"
	blockSpec.Priority = Interactive
	blocker, err := s.Submit(context.Background(), blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	const perClass = 24 // 48 total: a 4x burst against the limit of 12
	type sub struct {
		job *Job
		err error
	}
	storm := map[Priority][]sub{}
	for i := 0; i < 2*perClass; i++ {
		spec := tinySpec(t)
		spec.NoCache = true
		spec.Priority = Batch
		if i%2 == 1 {
			spec.Priority = Interactive
		}
		j, err := s.Submit(context.Background(), spec)
		storm[spec.Priority] = append(storm[spec.Priority], sub{j, err})
		if err != nil && !errors.Is(err, ErrShed) {
			t.Fatalf("submit %d failed with a non-shed error: %v", i, err)
		}
	}
	release()

	admitted, shed := map[Priority]int{}, map[Priority]int{}
	latencies := map[Priority][]time.Duration{}
	for class, subs := range storm {
		for _, su := range subs {
			if su.err != nil {
				shed[class]++
				continue
			}
			admitted[class]++
			if _, err := s.Wait(context.Background(), su.job.ID()); err != nil {
				t.Fatal(err)
			}
			if su.job.State() != StateCompleted {
				t.Fatalf("admitted %s job %s settled as %s (err %v)",
					class, su.job.ID(), su.job.State(), su.job.Err())
			}
			st := su.job.Status()
			latencies[class] = append(latencies[class], st.Finished.Sub(st.Submitted))
		}
	}

	// Success rate: every admitted job completed, so the rates reduce to
	// admission counts — Interactive must strictly dominate.
	if admitted[Interactive] <= admitted[Batch] {
		t.Fatalf("interactive admitted %d <= batch admitted %d under overload",
			admitted[Interactive], admitted[Batch])
	}
	if shed[Batch] <= shed[Interactive] {
		t.Fatalf("batch shed %d <= interactive shed %d: batch must shed first",
			shed[Batch], shed[Interactive])
	}
	p99 := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[(len(ds)*99)/100]
	}
	if len(latencies[Interactive]) == 0 || len(latencies[Batch]) == 0 {
		t.Fatal("a class completed no jobs; the burst did not exercise both")
	}
	if pi, pb := p99(latencies[Interactive]), p99(latencies[Batch]); pi >= pb {
		t.Fatalf("interactive p99 %v >= batch p99 %v under overload", pi, pb)
	}

	// Shed counters balance: submitted - admitted == shed, per the stats.
	st := s.Stats()
	wantShed := uint64(shed[Batch] + shed[Interactive])
	if st.Shed != wantShed || st.Rejected != wantShed {
		t.Fatalf("stats shed=%d rejected=%d, want both %d", st.Shed, st.Rejected, wantShed)
	}
	wantAdmitted := uint64(admitted[Batch] + admitted[Interactive] + 1) // + blocker
	if st.Submitted != wantAdmitted {
		t.Fatalf("stats.Submitted = %d, want %d", st.Submitted, wantAdmitted)
	}
	if _, err := s.Wait(context.Background(), blocker.ID()); err != nil {
		t.Fatal(err)
	}
}

// Consecutive backend failures trip the per-(network, fault-profile)
// breaker: further submissions to that backend fail fast with
// ErrBreakerOpen while other backends stay admitted; after the cooldown
// a probe runs, and a healthy outcome closes the breaker.
func TestGuardBreakerTripProbeRecover(t *testing.T) {
	s := New(Config{
		Workers:        1,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
		Guard: guard.New(guard.Config{
			Breaker: guard.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
		}),
	})
	defer s.Close()

	// Two crashing jobs on one backend trip its breaker: the crash is
	// pinned to attempt 1 and the budget is 1 attempt, so each fails.
	// The later probe uses the IDENTICAL fault plan (same fingerprint,
	// same breaker key) with a budget of 2, so it survives the crash.
	for i := 0; i < 2; i++ {
		j, err := s.Submit(context.Background(), faultSpec(t, 1, 1))
		if err != nil {
			t.Fatalf("pre-trip submit %d: %v", i, err)
		}
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
		if j.State() != StateFailed {
			t.Fatalf("fault job %d settled as %s", i, j.State())
		}
	}

	// The tripped backend fails fast...
	_, err := s.Submit(context.Background(), faultSpec(t, 1, 1))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("post-trip submit error = %v, want ErrBreakerOpen", err)
	}
	if d, ok := RetryAfterHint(err); !ok || d <= 0 {
		t.Fatalf("breaker denial hint = %v/%v, want positive", d, ok)
	}
	// ...while backend-less jobs and the same network without the fault
	// plan are unaffected.
	for _, spec := range []JobSpec{tinySpec(t), faultSpec(t, 99, 1)} {
		j, err := s.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("sibling submit rejected: %v", err)
		}
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
	}
	gs := s.GuardState()
	if gs.BreakersOpen != 1 || gs.BreakerTrips != 1 {
		t.Fatalf("guard state = %+v, want one open breaker with one trip", gs)
	}
	st := s.Stats()
	if st.BreakerRejects != 1 || st.Shed != 0 {
		t.Fatalf("stats = breakerRejects %d shed %d, want 1/0", st.BreakerRejects, st.Shed)
	}

	// Past the cooldown the next submission is the probe. The same fault
	// fingerprint with a retry budget crashes on attempt 1 and completes
	// on attempt 2: a healthy probe that closes the breaker.
	time.Sleep(80 * time.Millisecond)
	probe, err := s.Submit(context.Background(), faultSpec(t, 1, 2))
	if err != nil {
		t.Fatalf("probe submit rejected: %v", err)
	}
	if _, err := s.Wait(context.Background(), probe.ID()); err != nil {
		t.Fatal(err)
	}
	if probe.State() != StateCompleted {
		t.Fatalf("probe settled as %s (err %v)", probe.State(), probe.Err())
	}
	if gs := s.GuardState(); gs.BreakersOpen != 0 {
		t.Fatalf("breaker still open after healthy probe: %+v", gs)
	}
	// Closed again: the backend admits normally.
	if _, err := s.Submit(context.Background(), faultSpec(t, 1, 2)); err != nil {
		t.Fatalf("post-recovery submit rejected: %v", err)
	}
}

// Hedged execution returns byte-identical results: the same spec run
// with hedging forced on (every job races a hedge) and with no guard at
// all must produce identical report JSON — hedging may change latency,
// never bytes.
func TestGuardHedgeDeterminism(t *testing.T) {
	spec := faultSpec(t, 99, 1) // ModeRun on a real network, no effective faults
	spec.Params.Faults = nil
	spec.NoCache = true

	run := func(g *guard.Controller) ([]byte, *Job) {
		s := New(Config{Workers: 1, Guard: g})
		defer s.Close()
		j, err := s.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
		if j.State() != StateCompleted {
			t.Fatalf("job settled as %s (err %v)", j.State(), j.Err())
		}
		raw, err := json.Marshal(j.Report())
		if err != nil {
			t.Fatal(err)
		}
		return raw, j
	}

	baseline, _ := run(nil)
	hedged, hj := run(guard.New(guard.Config{
		Hedge: guard.HedgeConfig{Enabled: true, Delay: time.Nanosecond},
	}))
	if string(baseline) != string(hedged) {
		t.Fatalf("hedged report differs from baseline:\n%s\nvs\n%s", hedged, baseline)
	}
	if !hj.Status().Hedged {
		t.Fatal("hedge never launched despite the 1ns trigger")
	}
}

// Checkpointed jobs are excluded from hedging: two racers would share
// one checkpoint store and the resume state would depend on the race.
func TestGuardHedgeSkipsCheckpointedJobs(t *testing.T) {
	s := New(Config{Workers: 1, Guard: guard.New(guard.Config{
		Hedge: guard.HedgeConfig{Enabled: true, Delay: time.Nanosecond},
	})})
	defer s.Close()
	spec := faultSpec(t, 99, 1)
	spec.Params.Faults = nil
	spec.Checkpoint = true
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j.ID()); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateCompleted {
		t.Fatalf("job settled as %s (err %v)", j.State(), j.Err())
	}
	if j.Status().Hedged {
		t.Fatal("checkpointed job was hedged")
	}
	if st := s.Stats(); st.Hedges != 0 {
		t.Fatalf("stats.Hedges = %d, want 0", st.Hedges)
	}
}

// The job document carries queue_ms and deadline_remaining_ms so expiry
// and shed decisions are auditable after the fact.
func TestJobStatusQueueAndDeadlineFields(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	release := setGate(s)
	defer release()

	blockSpec := tinySpec(t)
	blockSpec.Label = "blocker"
	blocker, err := s.Submit(context.Background(), blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	spec := tinySpec(t)
	spec.Timeout = time.Hour
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	st := j.Status()
	if st.QueueMS < 10 {
		t.Fatalf("queued job queue_ms = %d, want >= 10", st.QueueMS)
	}
	if st.DeadlineRemainingMS == nil {
		t.Fatal("deadline-carrying job has no deadline_remaining_ms")
	}
	if rem := *st.DeadlineRemainingMS; rem <= 0 || rem > time.Hour.Milliseconds() {
		t.Fatalf("deadline_remaining_ms = %d, want within (0, 1h]", rem)
	}

	// No-deadline jobs omit the field entirely.
	free, err := s.Submit(context.Background(), tinySpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if free.Status().DeadlineRemainingMS != nil {
		t.Fatal("deadline-less job reports deadline_remaining_ms")
	}

	release()
	for _, jb := range []*Job{blocker, j, free} {
		if _, err := s.Wait(context.Background(), jb.ID()); err != nil {
			t.Fatal(err)
		}
	}
	// Settled: queue_ms freezes at the dispatch wait, and the remaining
	// budget freezes at settlement (still positive for a finished job).
	done := j.Status()
	if done.QueueMS < 10 {
		t.Fatalf("settled queue_ms = %d, want the recorded wait", done.QueueMS)
	}
	if done.DeadlineRemainingMS == nil || *done.DeadlineRemainingMS <= 0 {
		t.Fatalf("settled deadline_remaining_ms = %v, want positive frozen budget", done.DeadlineRemainingMS)
	}
}

// TestGuardStressScheduler hammers a fully-armed guard (tight limiter,
// buckets, fast breaker, aggressive hedging) through the scheduler from
// many goroutines mixing clean jobs, breaker-tripping fault jobs,
// deadline-doomed jobs and explicit cancellations. The CI -race step
// runs it with GOMAXPROCS=8; here it asserts the ledger invariants:
// every admission settles, counters balance, and no expired job ever
// ran.
func TestGuardStressScheduler(t *testing.T) {
	s := New(Config{
		Workers:        4,
		QueueDepth:     32,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
		Guard: guard.New(guard.Config{
			Limiter: guard.LimiterConfig{Initial: 16, Min: 4, Max: 64, Cooldown: time.Millisecond},
			Buckets: []guard.BucketConfig{{Capacity: 64, Rate: 2000}, {Capacity: 64, Rate: 4000}},
			Breaker: guard.BreakerConfig{Threshold: 2, Cooldown: 5 * time.Millisecond},
			Hedge:   guard.HedgeConfig{Enabled: true, Delay: 500 * time.Microsecond},
		}),
	})
	defer s.Close()

	const goroutines = 8
	const iters = 25
	var rejected atomic.Int64
	var jobsMu sync.Mutex
	var jobs []*Job
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var spec JobSpec
				switch (g + i) % 4 {
				case 0: // clean batch work
					spec = tinySpec(t)
					spec.NoCache = true
				case 1: // breaker-tripping backend
					spec = faultSpec(t, -1, 1)
				case 2: // doomed deadline: expires behind the queue
					spec = tinySpec(t)
					spec.NoCache = true
					spec.Timeout = time.Duration(1+i%3) * time.Millisecond
				default: // interactive, sometimes cancelled
					spec = tinySpec(t)
					spec.NoCache = true
					spec.Priority = Interactive
				}
				j, err := s.Submit(context.Background(), spec)
				if err != nil {
					if !errors.Is(err, ErrShed) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("unexpected admission error: %v", err)
						return
					}
					rejected.Add(1)
					continue
				}
				if (g+i)%7 == 0 {
					j.Cancel()
				}
				jobsMu.Lock()
				jobs = append(jobs, j)
				jobsMu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	for _, j := range jobs {
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
		// The core invariant: a job that expired in queue never ran.
		if err := j.Err(); err != nil && strings.Contains(err.Error(), "expired while queued") {
			if st := j.Status(); !st.Started.IsZero() || st.Attempts != 0 {
				t.Fatalf("expired job %s was dispatched: %+v", j.ID(), st)
			}
		}
	}

	st := s.Stats()
	if st.Submitted != uint64(len(jobs)) {
		t.Fatalf("stats.Submitted = %d, want %d admissions", st.Submitted, len(jobs))
	}
	if st.Rejected != uint64(rejected.Load()) {
		t.Fatalf("stats.Rejected = %d, want %d observed rejections", st.Rejected, rejected.Load())
	}
	if st.Submitted+st.Rejected != goroutines*iters {
		t.Fatalf("admitted %d + rejected %d != %d submissions", st.Submitted, st.Rejected, goroutines*iters)
	}
	if got := st.Completed + st.Failed + st.Cancelled; got != st.Submitted {
		t.Fatalf("settled %d != submitted %d", got, st.Submitted)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("non-idle after drain: %+v", st)
	}
	if st.Expired > st.Cancelled {
		t.Fatalf("expired %d > cancelled %d", st.Expired, st.Cancelled)
	}
	t.Logf("admitted=%d rejected=%d shed=%d breaker=%d expired=%d hedges=%d hedgeWins=%d trips=%d",
		st.Submitted, st.Rejected, st.Shed, st.BreakerRejects, st.Expired,
		st.Hedges, st.HedgeWins, s.GuardState().BreakerTrips)
}
