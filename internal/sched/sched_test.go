package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/scene"
)

// Shared test scenes, generated once.
var (
	testSceneOnce sync.Once
	testTinyScene *scene.Scene // fast sequential jobs
	testBigScene  *scene.Scene // a run long enough to cancel mid-flight
)

func testScenes(t testing.TB) (tiny, big *scene.Scene) {
	t.Helper()
	testSceneOnce.Do(func() {
		var err error
		testTinyScene, err = scene.Generate(scene.Config{Lines: 24, Samples: 16, Bands: 8, Seed: 3})
		if err != nil {
			panic(err)
		}
		testBigScene, err = scene.Generate(scene.Config{Lines: 192, Samples: 96, Bands: 48, Seed: 3})
		if err != nil {
			panic(err)
		}
	})
	return testTinyScene, testBigScene
}

// tinySpec is a quick sequential job on the tiny scene.
func tinySpec(t testing.TB) JobSpec {
	tiny, _ := testScenes(t)
	return JobSpec{
		Mode:       ModeSequential,
		Algorithm:  core.ATDCA,
		Cube:       tiny.Cube,
		CubeDigest: CubeDigest(tiny.Cube),
		// The tiny scene has 8 bands; the default t=18 would degenerate.
		Params: core.Params{Targets: 4},
	}
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID(), j.State(), want)
}

// setGate installs a test hook that parks any job labelled "blocker"
// until the returned release function is called.
func setGate(s *Scheduler) (release func()) {
	gate := make(chan struct{})
	s.mu.Lock()
	s.testHookRunning = func(j *Job) {
		if j.spec.Label == "blocker" {
			<-gate
		}
	}
	s.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

func TestSubmitAndComplete(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	j, err := s.Submit(context.Background(), tinySpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j.ID()); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateCompleted {
		t.Fatalf("state = %s, want completed (err=%v)", j.State(), j.Err())
	}
	if j.Report() == nil || len(j.Report().Detection.Targets) == 0 {
		t.Fatal("completed detection job has no targets")
	}
	st := s.Stats()
	if st.Completed != 1 || st.Submitted != 1 {
		t.Fatalf("stats = %+v, want 1 submitted / 1 completed", st)
	}
	if st.VirtualSeconds <= 0 {
		t.Fatalf("virtual seconds = %v, want > 0", st.VirtualSeconds)
	}
}

func TestBackpressureRejectsWhenFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Close()
	release := setGate(s)
	defer release()

	blockSpec := tinySpec(t)
	blockSpec.Label = "blocker"
	blocker, err := s.Submit(context.Background(), blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning) // out of the queue, parked on the gate

	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(context.Background(), tinySpec(t))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		queued = append(queued, j)
	}
	if _, err := s.Submit(context.Background(), tinySpec(t)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.Queued != 2 {
		t.Fatalf("stats = %+v, want 1 rejected / 2 queued", st)
	}

	release()
	for _, j := range append(queued, blocker) {
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
		if j.State() != StateCompleted {
			t.Fatalf("job %s state = %s, want completed (err=%v)", j.ID(), j.State(), j.Err())
		}
	}
}

func TestPriorityOrderingUnderContention(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16, CacheEntries: -1})
	defer s.Close()
	release := setGate(s)
	defer release()

	blockSpec := tinySpec(t)
	blockSpec.Label = "blocker"
	blocker, err := s.Submit(context.Background(), blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	var batch, interactive []*Job
	for i := 0; i < 3; i++ {
		spec := tinySpec(t)
		spec.Priority = Batch
		j, err := s.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, j)
	}
	for i := 0; i < 2; i++ {
		spec := tinySpec(t)
		spec.Priority = Interactive
		j, err := s.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		interactive = append(interactive, j)
	}

	release()
	for _, j := range append(append([]*Job{blocker}, batch...), interactive...) {
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
	}
	// With one worker, dispatch order equals start-time order: every
	// interactive job must have started before every batch job even
	// though all batch jobs were submitted first.
	for _, ij := range interactive {
		for _, bj := range batch {
			if !ij.startedAtTime().Before(bj.startedAtTime()) {
				t.Fatalf("interactive %s started %v, after batch %s at %v",
					ij.ID(), ij.startedAtTime(), bj.ID(), bj.startedAtTime())
			}
		}
	}
}

func TestDeadlineExpiredWhileQueued(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	release := setGate(s)
	defer release()

	blockSpec := tinySpec(t)
	blockSpec.Label = "blocker"
	blocker, err := s.Submit(context.Background(), blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	spec := tinySpec(t)
	spec.Timeout = 20 * time.Millisecond
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// The queue watcher must settle the expired job even though the only
	// worker is still parked on the blocker.
	if _, err := s.Wait(context.Background(), j.ID()); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateCancelled {
		t.Fatalf("state = %s, want cancelled", j.State())
	}
	if !errors.Is(j.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", j.Err())
	}
	// The expired job must have left the queue (capacity freed).
	if st := s.Stats(); st.Queued != 0 || st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want 0 queued / 1 cancelled", st)
	}
	release()
	waitState(t, blocker, StateCompleted)
}

// The acceptance-criterion test: cancelling a running job aborts its
// in-flight simulation and frees the worker slot for the next job.
func TestCancelRunningJobFreesWorkerSlot(t *testing.T) {
	_, big := testScenes(t)
	s := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: -1})
	defer s.Close()

	// A run that takes hundreds of milliseconds of real time.
	long, err := s.Submit(context.Background(), JobSpec{
		Mode:      ModeRun,
		Algorithm: core.MORPH,
		Network:   platform.FullyHeterogeneous(),
		Cube:      big.Cube,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, StateRunning)
	cancelled := time.Now()
	long.Cancel()
	if _, err := s.Wait(context.Background(), long.ID()); err != nil {
		t.Fatal(err)
	}
	settle := time.Since(cancelled)
	if long.State() != StateCancelled {
		t.Fatalf("state = %s, want cancelled (err=%v)", long.State(), long.Err())
	}
	if !errors.Is(long.Err(), context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", long.Err())
	}
	// "Promptly": the abort must not have waited out the full run.
	if settle > 2*time.Second {
		t.Fatalf("cancellation took %v to settle", settle)
	}

	// The single worker slot must now be free: a follow-up job completes.
	next, err := s.Submit(context.Background(), tinySpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), next.ID()); err != nil {
		t.Fatal(err)
	}
	if next.State() != StateCompleted {
		t.Fatalf("follow-up job state = %s, want completed (err=%v)", next.State(), next.Err())
	}
}

func TestResultCacheHit(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: 16})
	defer s.Close()
	spec := tinySpec(t)

	first, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), first.ID()); err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), second.ID()); err != nil {
		t.Fatal(err)
	}
	if !second.FromCache() {
		t.Fatal("identical resubmission missed the result cache")
	}
	if second.Report() != first.Report() {
		t.Fatal("cache hit returned a different report")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMiss != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// A different parameterization must miss.
	spec.Params.Targets = 5
	third, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), third.ID()); err != nil {
		t.Fatal(err)
	}
	if third.FromCache() {
		t.Fatal("different params wrongly hit the cache")
	}
}

func TestSubmitValidation(t *testing.T) {
	tiny, _ := testScenes(t)
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"nil cube", JobSpec{Mode: ModeSequential, Algorithm: core.ATDCA}},
		{"no network", JobSpec{Mode: ModeRun, Algorithm: core.ATDCA, Cube: tiny.Cube}},
		{"bad mode", JobSpec{Mode: "warp", Algorithm: core.ATDCA, Cube: tiny.Cube}},
		{"bad algorithm", JobSpec{Mode: ModeSequential, Algorithm: "FFT", Cube: tiny.Cube}},
		{"bad priority", JobSpec{Mode: ModeSequential, Algorithm: core.ATDCA, Cube: tiny.Cube, Priority: 7}},
		{"negative timeout", JobSpec{Mode: ModeSequential, Algorithm: core.ATDCA, Cube: tiny.Cube, Timeout: -time.Second}},
	}
	for _, tc := range cases {
		if _, err := s.Submit(context.Background(), tc.spec); err == nil {
			t.Errorf("%s: submit accepted an invalid spec", tc.name)
		}
	}
}

func TestCloseCancelsQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	release := setGate(s)
	defer release()

	blockSpec := tinySpec(t)
	blockSpec.Label = "blocker"
	blocker, err := s.Submit(context.Background(), blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	queued, err := s.Submit(context.Background(), tinySpec(t))
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(10 * time.Millisecond)
		release()
	}()
	s.Close()
	if queued.State() != StateCancelled || !errors.Is(queued.Err(), ErrClosed) {
		t.Fatalf("queued job after Close: state=%s err=%v", queued.State(), queued.Err())
	}
	if _, err := s.Submit(context.Background(), tinySpec(t)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close error = %v, want ErrClosed", err)
	}
}

// TestConcurrentSubmitStress hammers the scheduler from many goroutines
// with mixed priorities, cancellations and cache hits; run under -race.
func TestConcurrentSubmitStress(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 256, CacheEntries: 8})
	defer s.Close()
	base := tinySpec(t)

	const producers = 8
	const perProducer = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	var jobs []*Job
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				spec := base
				spec.Priority = Priority((p + i) % 2)
				// A few distinct parameterizations so the cache sees
				// both hits and misses.
				spec.Params.Targets = 3 + (i % 4)
				spec.Label = fmt.Sprintf("p%d-%d", p, i)
				j, err := s.Submit(context.Background(), spec)
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					j.Cancel()
				}
				mu.Lock()
				jobs = append(jobs, j)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	var completed, cancelled int
	for _, j := range jobs {
		if _, err := s.Wait(context.Background(), j.ID()); err != nil {
			t.Fatal(err)
		}
		switch j.State() {
		case StateCompleted:
			completed++
		case StateCancelled:
			cancelled++
		default:
			t.Fatalf("job %s settled as %s (err=%v)", j.ID(), j.State(), j.Err())
		}
	}
	st := s.Stats()
	if st.Failed != 0 {
		t.Fatalf("stats = %+v, want no failures", st)
	}
	if int(st.Completed) != completed || int(st.Cancelled) != cancelled {
		t.Fatalf("stats %+v disagree with observed %d completed / %d cancelled", st, completed, cancelled)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats = %+v, want drained gauges", st)
	}
}

func TestAdaptiveMode(t *testing.T) {
	tiny, _ := testScenes(t)
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	j, err := s.Submit(context.Background(), JobSpec{
		Mode:    ModeAdaptive,
		Network: platform.FullyHeterogeneous(),
		Cube:    tiny.Cube,
		Params:  core.Params{Targets: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j.ID()); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateCompleted {
		t.Fatalf("state = %s, want completed (err=%v)", j.State(), j.Err())
	}
	if j.AdaptiveReport() == nil || j.AdaptiveReport().Trace == nil {
		t.Fatal("adaptive job has no convergence trace")
	}
}

func TestWaitRespectsContext(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	release := setGate(s)
	defer release()
	spec := tinySpec(t)
	spec.Label = "blocker"
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Wait(ctx, j.ID()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait error = %v, want context.DeadlineExceeded", err)
	}
	if _, err := s.Wait(context.Background(), "job-999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Wait on unknown job error = %v, want ErrUnknownJob", err)
	}
}
