package sched

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// The job journal is an append-only write-ahead log of job lifecycle
// records, the durability layer behind hyperhetd's crash/restart story: a
// scheduler configured with a Journal appends a record at every lifecycle
// edge (submitted, started, checkpointed, finished), each one fsync'd
// before the scheduler proceeds, and a restarted process folds the log
// with ReplayJournal to rebuild its state — finished jobs become queryable
// history again, unfinished jobs are resubmitted under their original IDs
// and resume from their last checkpointed round.
//
// File layout: an 8-byte header (magic "HHWJ" plus a little-endian uint32
// format version), then records framed as
//
//	[uint32 body length][uint32 CRC32-IEEE of body][JSON body]
//
// Replay trusts the framing only as far as it verifies: a truncated tail
// or a checksum mismatch ends the readable log (everything before it is
// kept — exactly the torn-final-write a crash produces), while a record
// whose frame is sound but whose schema version is unknown is skipped and
// replay continues.
const (
	journalMagic    = "HHWJ"
	journalFormat   = 1
	journalFileName = "journal.wal"
	// journalHeaderLen is the file header: magic + format version.
	journalHeaderLen = 8
	// maxRecordLen caps one record's body so a corrupt length field cannot
	// drive a giant allocation during replay.
	maxRecordLen = 64 << 20
)

// recordVersion is the schema version stamped into every record; replay
// skips records from other versions without aborting the fold.
const recordVersion = 1

// Journal record types, one per job lifecycle edge.
const (
	recSubmitted    = "submitted"
	recStarted      = "started"
	recCheckpointed = "checkpointed"
	recFinished     = "finished"
)

// Pipeline lifecycle record types, appended by the internal/flow engine
// (exported because flow owns the record content while this package owns
// the framing and the replay fold). Pipeline records set Record.Pipeline
// and leave Record.Job empty, so the two folds never cross.
const (
	// RecPipelineSubmitted opens a pipeline's journal story; Request
	// carries the raw submission document.
	RecPipelineSubmitted = "pipeline_submitted"
	// RecPipelineStage records one successfully completed stage; Stage
	// names it and Report carries the flow-encoded stage result.
	RecPipelineStage = "pipeline_stage"
	// RecPipelineFinished closes the story with the terminal state and
	// the final status document in Report.
	RecPipelineFinished = "pipeline_finished"
)

// Record is one journal entry. Only the fields of its Type are set.
type Record struct {
	// V is the record schema version (recordVersion at write time).
	V int `json:"v"`
	// Type is the lifecycle edge: submitted, started, checkpointed or
	// finished for jobs; the RecPipeline* constants for pipelines.
	Type string `json:"type"`
	// Job is the scheduler-assigned job ID (empty on pipeline records).
	Job string `json:"job,omitempty"`
	// Pipeline is the flow-engine pipeline ID (empty on job records).
	Pipeline string `json:"pipeline,omitempty"`
	// Stage is the stage name of a RecPipelineStage record.
	Stage string `json:"stage,omitempty"`
	// Time stamps the record (UTC; filled by Append when zero).
	Time time.Time `json:"time"`

	// Request (submitted) is the raw submission document — for hyperhetd,
	// the verbatim POST /submit body — from which a restarted server
	// rebuilds the JobSpec. CacheKey is the job's result-cache key, so a
	// restored completed result can re-seed the cache without rehashing
	// the scene.
	Request  json.RawMessage `json:"request,omitempty"`
	CacheKey string          `json:"cache_key,omitempty"`

	// Attempt (started) is the 1-based execution attempt beginning.
	Attempt int `json:"attempt,omitempty"`

	// Round and Snapshot (checkpointed) carry the master round state: the
	// frame is the versioned, checksummed checkpoint.Encode encoding, so a
	// damaged snapshot inside an intact record is detected independently.
	Round    int    `json:"round,omitempty"`
	Snapshot []byte `json:"snapshot,omitempty"`

	// State, Error, Report and Adaptive (finished) record the terminal
	// outcome. Report is the JSON run report with trace events stripped.
	State    string          `json:"state,omitempty"`
	Error    string          `json:"error,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
	Adaptive json.RawMessage `json:"adaptive,omitempty"`
}

// Journal is an append-only, fsync-per-record job log in a directory.
// Open with OpenJournal; safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// JournalPath returns the path of the journal file inside dir, for tools
// that inspect — or deliberately damage — the raw log (the crash
// simulation harness tears journals at arbitrary byte offsets).
func JournalPath(dir string) string {
	return filepath.Join(dir, journalFileName)
}

// OpenJournal opens (creating directory and file as needed) the journal in
// dir and positions it for appending. An existing file must carry the
// expected header; replay the records first with ReplayJournal if the
// previous process may have left state behind.
//
// An existing file is first truncated to its readable prefix: a crash can
// leave a torn frame at the tail, and appending after those bytes would
// strand every later record behind frame damage — replay stops at the
// first bad frame, so a journal that survived two crashes would silently
// lose everything the middle process recorded.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sched: creating journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sched: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sched: opening journal: %w", err)
	}
	if st.Size() == 0 {
		var hdr [journalHeaderLen]byte
		copy(hdr[:4], journalMagic)
		binary.LittleEndian.PutUint32(hdr[4:], journalFormat)
		if _, err := f.Write(hdr[:]); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("sched: initializing journal: %w", err)
		}
	} else {
		b := make([]byte, st.Size())
		if _, err := f.ReadAt(b, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("sched: reading journal: %w", err)
		}
		if err := checkJournalHeader(b); err != nil {
			f.Close()
			return nil, err
		}
		if n := validJournalLen(b); int64(n) < st.Size() {
			if err := f.Truncate(int64(n)); err != nil {
				f.Close()
				return nil, fmt.Errorf("sched: truncating torn journal tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("sched: syncing truncated journal: %w", err)
			}
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("sched: seeking journal: %w", err)
	}
	return &Journal{f: f}, nil
}

func checkJournalHeader(hdr []byte) error {
	if len(hdr) < journalHeaderLen || string(hdr[:4]) != journalMagic {
		return fmt.Errorf("sched: %q is not a job journal (bad magic)", journalFileName)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:journalHeaderLen]); v != journalFormat {
		return fmt.Errorf("sched: journal format %d (this build reads %d)", v, journalFormat)
	}
	return nil
}

// Append frames, writes and fsyncs one record. A nil journal is a no-op.
func (jl *Journal) Append(rec Record) error {
	if jl == nil {
		return nil
	}
	rec.V = recordVersion
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	body, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("sched: encoding journal record: %w", err)
	}
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)

	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return errors.New("sched: journal closed")
	}
	if _, err := jl.f.Write(frame); err != nil {
		return fmt.Errorf("sched: appending journal record: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("sched: syncing journal: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file. Further Appends fail; Close is
// idempotent.
func (jl *Journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Sync()
	if cerr := jl.f.Close(); err == nil {
		err = cerr
	}
	jl.f = nil
	return err
}

// JournalJob is one job's folded journal story: the latest state implied
// by its records, in submission order across the log.
type JournalJob struct {
	// ID is the job's original scheduler ID, preserved across restarts.
	ID string
	// Request is the raw submission document from the submitted record.
	Request []byte
	// CacheKey is the job's result-cache key ("" when uncacheable).
	CacheKey string
	// Submitted is the original submission time.
	Submitted time.Time
	// Attempts counts the started records seen (execution attempts begun).
	Attempts int
	// Finished reports whether a finished record closed the story; the
	// remaining fields below are set only in that case (except Snapshot,
	// set only for unfinished jobs).
	Finished   bool
	FinishedAt time.Time
	// State is the terminal lifecycle state of a finished job.
	State State
	// Error is the terminal error message ("" on success).
	Error string
	// Report is the completed run report (trace events stripped).
	Report *core.RunReport
	// Adaptive is the adaptive report of a completed ModeAdaptive job.
	Adaptive *core.AdaptiveReport
	// Snapshot is the latest checkpointed master round state of an
	// unfinished job; a resubmitted job seeds its store from it and
	// resumes at Snapshot.Round.
	Snapshot *checkpoint.Snapshot
}

// JournalPipeline is one pipeline's folded journal story: the submission
// document, every stage completed so far, and the terminal outcome if a
// finished record closed the story. The flow engine interprets the raw
// stage and status documents; this package only folds the frames.
type JournalPipeline struct {
	// ID is the pipeline's original flow-engine ID.
	ID string
	// Request is the raw submission document from the submitted record.
	Request []byte
	// Submitted is the original submission time.
	Submitted time.Time
	// Stages maps completed stage names to their flow-encoded results; a
	// resumed pipeline restores these stages instead of re-running them.
	Stages map[string]json.RawMessage
	// Finished reports whether a finished record closed the story; the
	// fields below are set only in that case.
	Finished   bool
	FinishedAt time.Time
	// State is the terminal lifecycle state string of a finished pipeline.
	State string
	// Error is the terminal error message ("" on success).
	Error string
	// Status is the flow-encoded final status document.
	Status json.RawMessage
}

// ReplayStats counts what a journal replay saw, the numbers hyperhetd
// surfaces in /stats: records folded, torn-tail truncations (0 or 1 — a
// damaged frame ends the readable log), records skipped for an unknown
// schema version, and frames whose JSON would not parse.
type ReplayStats struct {
	// Records is the number of records decoded and folded.
	Records int `json:"records_replayed"`
	// TornTailTruncations is 1 when a truncated or checksum-failing frame
	// ended the readable log early, 0 on a clean read.
	TornTailTruncations int `json:"torn_tail_truncations"`
	// UnknownVersionSkips counts intact frames written by another record
	// schema version and skipped.
	UnknownVersionSkips int `json:"unknown_version_skips"`
	// UnreadableSkips counts intact frames whose JSON body would not
	// parse.
	UnreadableSkips int `json:"unreadable_skips"`
}

// JournalState is everything a replayed journal describes: job stories,
// pipeline stories, and the replay counters.
type JournalState struct {
	Jobs      []*JournalJob
	Pipelines []*JournalPipeline
	Stats     ReplayStats
}

// ReplayJournal reads the journal in dir and folds it into per-job
// stories, ordered by first appearance. A missing journal file yields
// (nil, nil); a damaged tail truncates the readable log without error; a
// damaged header is an error, since nothing after it can be trusted.
func ReplayJournal(dir string) ([]*JournalJob, error) {
	st, err := ReplayJournalState(dir)
	if err != nil || st == nil {
		return nil, err
	}
	return st.Jobs, nil
}

// ReplayJournalState reads the journal in dir and folds it into job and
// pipeline stories plus replay counters. A missing journal file yields
// (nil, nil); damaged-tail and header semantics match ReplayJournal.
func ReplayJournalState(dir string) (*JournalState, error) {
	b, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sched: reading journal: %w", err)
	}
	recs, stats, err := decodeJournal(b)
	if err != nil {
		return nil, err
	}
	st := &JournalState{Stats: stats}
	st.Jobs, st.Pipelines = foldJournal(recs)
	return st, nil
}

// validJournalLen returns the length of the journal's readable prefix:
// the header plus every intact frame before the first truncated,
// oversized or checksum-failing one. Beyond that point the framing itself
// is untrustworthy, so the prefix is all OpenJournal may append after.
func validJournalLen(b []byte) int {
	off := journalHeaderLen
	for off+8 <= len(b) {
		n := binary.LittleEndian.Uint32(b[off:])
		want := binary.LittleEndian.Uint32(b[off+4:])
		if n > maxRecordLen || off+8+int(n) > len(b) {
			break
		}
		if crc32.ChecksumIEEE(b[off+8:off+8+int(n)]) != want {
			break
		}
		off += 8 + int(n)
	}
	return off
}

// decodeJournal parses the framed records, stopping — not failing — at the
// first truncated or checksum-failing frame: beyond a damaged frame the
// framing itself is untrustworthy, and a torn final write is the expected
// crash artifact. Records with an unknown schema version are skipped.
func decodeJournal(b []byte) ([]Record, ReplayStats, error) {
	var stats ReplayStats
	if len(b) < journalHeaderLen {
		return nil, stats, fmt.Errorf("sched: journal too short for a header (%d bytes)", len(b))
	}
	if err := checkJournalHeader(b); err != nil {
		return nil, stats, err
	}
	var recs []Record
	off := journalHeaderLen
	for off+8 <= len(b) {
		n := binary.LittleEndian.Uint32(b[off:])
		want := binary.LittleEndian.Uint32(b[off+4:])
		if n > maxRecordLen || off+8+int(n) > len(b) {
			stats.TornTailTruncations++ // corrupt length or truncated tail
			break
		}
		body := b[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(body) != want {
			stats.TornTailTruncations++ // torn or corrupted frame
			break
		}
		off += 8 + int(n)
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			stats.UnreadableSkips++ // frame intact, content unreadable: skip
			continue
		}
		if rec.V != recordVersion {
			stats.UnknownVersionSkips++ // written by another schema: skip
			continue
		}
		recs = append(recs, rec)
		stats.Records++
	}
	// A partial trailing frame header (fewer than 8 bytes) is the same
	// torn-write artifact as a truncated body.
	if off+8 > len(b) && off != len(b) && stats.TornTailTruncations == 0 {
		stats.TornTailTruncations++
	}
	return recs, stats, nil
}

// foldJournal reduces the record stream to each job's and each
// pipeline's latest state.
func foldJournal(recs []Record) ([]*JournalJob, []*JournalPipeline) {
	byID := make(map[string]*JournalJob)
	var order []*JournalJob
	get := func(id string) *JournalJob {
		if jj, ok := byID[id]; ok {
			return jj
		}
		jj := &JournalJob{ID: id}
		byID[id] = jj
		order = append(order, jj)
		return jj
	}
	pipeByID := make(map[string]*JournalPipeline)
	var pipeOrder []*JournalPipeline
	getPipe := func(id string) *JournalPipeline {
		if jp, ok := pipeByID[id]; ok {
			return jp
		}
		jp := &JournalPipeline{ID: id, Stages: make(map[string]json.RawMessage)}
		pipeByID[id] = jp
		pipeOrder = append(pipeOrder, jp)
		return jp
	}
	for _, rec := range recs {
		if rec.Pipeline != "" {
			jp := getPipe(rec.Pipeline)
			switch rec.Type {
			case RecPipelineSubmitted:
				jp.Request = rec.Request
				jp.Submitted = rec.Time
			case RecPipelineStage:
				if rec.Stage != "" {
					jp.Stages[rec.Stage] = rec.Report
				}
			case RecPipelineFinished:
				jp.Finished = true
				jp.FinishedAt = rec.Time
				jp.State = rec.State
				jp.Error = rec.Error
				jp.Status = rec.Report
			}
			continue
		}
		if rec.Job == "" {
			continue
		}
		jj := get(rec.Job)
		switch rec.Type {
		case recSubmitted:
			jj.Request = rec.Request
			jj.CacheKey = rec.CacheKey
			jj.Submitted = rec.Time
		case recStarted:
			jj.Attempts++
		case recCheckpointed:
			// The snapshot frame carries its own checksum: a damaged one
			// inside an intact record keeps the previous snapshot.
			if s, err := checkpoint.Decode(rec.Snapshot); err == nil {
				jj.Snapshot = &s
			}
		case recFinished:
			jj.Finished = true
			jj.FinishedAt = rec.Time
			jj.State = State(rec.State)
			jj.Error = rec.Error
			jj.Snapshot = nil
			if len(rec.Report) > 0 {
				var rep core.RunReport
				if json.Unmarshal(rec.Report, &rep) == nil {
					jj.Report = &rep
				}
			}
			if len(rec.Adaptive) > 0 {
				var ar core.AdaptiveReport
				if json.Unmarshal(rec.Adaptive, &ar) == nil {
					jj.Adaptive = &ar
				}
			}
		}
	}
	return order, pipeOrder
}

// marshalReport serializes a run report for a finished record with the
// trace events stripped: they dominate the encoding and replay needs the
// result, not the flame graph.
func marshalReport(rep *core.RunReport) json.RawMessage {
	if rep == nil {
		return nil
	}
	r := *rep
	r.TraceEvents = nil
	b, err := json.Marshal(&r)
	if err != nil {
		return nil
	}
	return b
}

func marshalAdaptive(ar *core.AdaptiveReport) json.RawMessage {
	if ar == nil {
		return nil
	}
	a := *ar
	a.TraceEvents = nil
	b, err := json.Marshal(&a)
	if err != nil {
		return nil
	}
	return b
}

// journaledStore wraps a job's in-memory checkpoint store so every saved
// round snapshot also lands in the journal: the job's resume state then
// survives the process, not just the retry loop.
type journaledStore struct {
	inner *checkpoint.MemStore
	sched *Scheduler
	job   string
}

func (js *journaledStore) Save(s checkpoint.Snapshot) error {
	if err := js.inner.Save(s); err != nil {
		return err
	}
	js.sched.journalAppend(Record{
		Type:     recCheckpointed,
		Job:      js.job,
		Round:    s.Round,
		Snapshot: checkpoint.Encode(s),
	})
	return nil
}

func (js *journaledStore) Latest() (checkpoint.Snapshot, bool) {
	return js.inner.Latest()
}
