package sched

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// The job journal is an append-only write-ahead log of job lifecycle
// records, the durability layer behind hyperhetd's crash/restart story: a
// scheduler configured with a Journal appends a record at every lifecycle
// edge (submitted, started, checkpointed, finished), each one fsync'd
// before the scheduler proceeds, and a restarted process folds the log
// with ReplayJournal to rebuild its state — finished jobs become queryable
// history again, unfinished jobs are resubmitted under their original IDs
// and resume from their last checkpointed round.
//
// File layout: an 8-byte header (magic "HHWJ" plus a little-endian uint32
// format version), then records framed as
//
//	[uint32 body length][uint32 CRC32-IEEE of body][JSON body]
//
// Replay trusts the framing only as far as it verifies: a truncated tail
// or a checksum mismatch ends the readable log (everything before it is
// kept — exactly the torn-final-write a crash produces), while a record
// whose frame is sound but whose schema version is unknown is skipped and
// replay continues.
const (
	journalMagic    = "HHWJ"
	journalFormat   = 1
	journalFileName = "journal.wal"
	// journalHeaderLen is the file header: magic + format version.
	journalHeaderLen = 8
	// maxRecordLen caps one record's body so a corrupt length field cannot
	// drive a giant allocation during replay.
	maxRecordLen = 64 << 20
)

// recordVersion is the schema version stamped into every record; replay
// skips records from other versions without aborting the fold.
const recordVersion = 1

// Journal record types, one per job lifecycle edge.
const (
	recSubmitted    = "submitted"
	recStarted      = "started"
	recCheckpointed = "checkpointed"
	recFinished     = "finished"
)

// Record is one journal entry. Only the fields of its Type are set.
type Record struct {
	// V is the record schema version (recordVersion at write time).
	V int `json:"v"`
	// Type is the lifecycle edge: submitted, started, checkpointed or
	// finished.
	Type string `json:"type"`
	// Job is the scheduler-assigned job ID.
	Job string `json:"job"`
	// Time stamps the record (UTC; filled by Append when zero).
	Time time.Time `json:"time"`

	// Request (submitted) is the raw submission document — for hyperhetd,
	// the verbatim POST /submit body — from which a restarted server
	// rebuilds the JobSpec. CacheKey is the job's result-cache key, so a
	// restored completed result can re-seed the cache without rehashing
	// the scene.
	Request  json.RawMessage `json:"request,omitempty"`
	CacheKey string          `json:"cache_key,omitempty"`

	// Attempt (started) is the 1-based execution attempt beginning.
	Attempt int `json:"attempt,omitempty"`

	// Round and Snapshot (checkpointed) carry the master round state: the
	// frame is the versioned, checksummed checkpoint.Encode encoding, so a
	// damaged snapshot inside an intact record is detected independently.
	Round    int    `json:"round,omitempty"`
	Snapshot []byte `json:"snapshot,omitempty"`

	// State, Error, Report and Adaptive (finished) record the terminal
	// outcome. Report is the JSON run report with trace events stripped.
	State    string          `json:"state,omitempty"`
	Error    string          `json:"error,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
	Adaptive json.RawMessage `json:"adaptive,omitempty"`
}

// Journal is an append-only, fsync-per-record job log in a directory.
// Open with OpenJournal; safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating directory and file as needed) the journal in
// dir and positions it for appending. An existing file must carry the
// expected header; replay the records first with ReplayJournal if the
// previous process may have left state behind.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sched: creating journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sched: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sched: opening journal: %w", err)
	}
	if st.Size() == 0 {
		var hdr [journalHeaderLen]byte
		copy(hdr[:4], journalMagic)
		binary.LittleEndian.PutUint32(hdr[4:], journalFormat)
		if _, err := f.Write(hdr[:]); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("sched: initializing journal: %w", err)
		}
	} else {
		var hdr [journalHeaderLen]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("sched: reading journal header: %w", err)
		}
		if err := checkJournalHeader(hdr[:]); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("sched: seeking journal: %w", err)
	}
	return &Journal{f: f}, nil
}

func checkJournalHeader(hdr []byte) error {
	if len(hdr) < journalHeaderLen || string(hdr[:4]) != journalMagic {
		return fmt.Errorf("sched: %q is not a job journal (bad magic)", journalFileName)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:journalHeaderLen]); v != journalFormat {
		return fmt.Errorf("sched: journal format %d (this build reads %d)", v, journalFormat)
	}
	return nil
}

// Append frames, writes and fsyncs one record. A nil journal is a no-op.
func (jl *Journal) Append(rec Record) error {
	if jl == nil {
		return nil
	}
	rec.V = recordVersion
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	body, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("sched: encoding journal record: %w", err)
	}
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)

	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return errors.New("sched: journal closed")
	}
	if _, err := jl.f.Write(frame); err != nil {
		return fmt.Errorf("sched: appending journal record: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("sched: syncing journal: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file. Further Appends fail; Close is
// idempotent.
func (jl *Journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Sync()
	if cerr := jl.f.Close(); err == nil {
		err = cerr
	}
	jl.f = nil
	return err
}

// JournalJob is one job's folded journal story: the latest state implied
// by its records, in submission order across the log.
type JournalJob struct {
	// ID is the job's original scheduler ID, preserved across restarts.
	ID string
	// Request is the raw submission document from the submitted record.
	Request []byte
	// CacheKey is the job's result-cache key ("" when uncacheable).
	CacheKey string
	// Submitted is the original submission time.
	Submitted time.Time
	// Attempts counts the started records seen (execution attempts begun).
	Attempts int
	// Finished reports whether a finished record closed the story; the
	// remaining fields below are set only in that case (except Snapshot,
	// set only for unfinished jobs).
	Finished   bool
	FinishedAt time.Time
	// State is the terminal lifecycle state of a finished job.
	State State
	// Error is the terminal error message ("" on success).
	Error string
	// Report is the completed run report (trace events stripped).
	Report *core.RunReport
	// Adaptive is the adaptive report of a completed ModeAdaptive job.
	Adaptive *core.AdaptiveReport
	// Snapshot is the latest checkpointed master round state of an
	// unfinished job; a resubmitted job seeds its store from it and
	// resumes at Snapshot.Round.
	Snapshot *checkpoint.Snapshot
}

// ReplayJournal reads the journal in dir and folds it into per-job
// stories, ordered by first appearance. A missing journal file yields
// (nil, nil); a damaged tail truncates the readable log without error; a
// damaged header is an error, since nothing after it can be trusted.
func ReplayJournal(dir string) ([]*JournalJob, error) {
	b, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sched: reading journal: %w", err)
	}
	recs, err := decodeJournal(b)
	if err != nil {
		return nil, err
	}
	return foldJournal(recs), nil
}

// decodeJournal parses the framed records, stopping — not failing — at the
// first truncated or checksum-failing frame: beyond a damaged frame the
// framing itself is untrustworthy, and a torn final write is the expected
// crash artifact. Records with an unknown schema version are skipped.
func decodeJournal(b []byte) ([]Record, error) {
	if len(b) < journalHeaderLen {
		return nil, fmt.Errorf("sched: journal too short for a header (%d bytes)", len(b))
	}
	if err := checkJournalHeader(b); err != nil {
		return nil, err
	}
	var recs []Record
	off := journalHeaderLen
	for off+8 <= len(b) {
		n := binary.LittleEndian.Uint32(b[off:])
		want := binary.LittleEndian.Uint32(b[off+4:])
		if n > maxRecordLen || off+8+int(n) > len(b) {
			break // corrupt length or truncated tail
		}
		body := b[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(body) != want {
			break // torn or corrupted frame
		}
		off += 8 + int(n)
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			continue // frame intact, content unreadable: skip
		}
		if rec.V != recordVersion {
			continue // written by another schema: skip
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// foldJournal reduces the record stream to each job's latest state.
func foldJournal(recs []Record) []*JournalJob {
	byID := make(map[string]*JournalJob)
	var order []*JournalJob
	get := func(id string) *JournalJob {
		if jj, ok := byID[id]; ok {
			return jj
		}
		jj := &JournalJob{ID: id}
		byID[id] = jj
		order = append(order, jj)
		return jj
	}
	for _, rec := range recs {
		if rec.Job == "" {
			continue
		}
		jj := get(rec.Job)
		switch rec.Type {
		case recSubmitted:
			jj.Request = rec.Request
			jj.CacheKey = rec.CacheKey
			jj.Submitted = rec.Time
		case recStarted:
			jj.Attempts++
		case recCheckpointed:
			// The snapshot frame carries its own checksum: a damaged one
			// inside an intact record keeps the previous snapshot.
			if s, err := checkpoint.Decode(rec.Snapshot); err == nil {
				jj.Snapshot = &s
			}
		case recFinished:
			jj.Finished = true
			jj.FinishedAt = rec.Time
			jj.State = State(rec.State)
			jj.Error = rec.Error
			jj.Snapshot = nil
			if len(rec.Report) > 0 {
				var rep core.RunReport
				if json.Unmarshal(rec.Report, &rep) == nil {
					jj.Report = &rep
				}
			}
			if len(rec.Adaptive) > 0 {
				var ar core.AdaptiveReport
				if json.Unmarshal(rec.Adaptive, &ar) == nil {
					jj.Adaptive = &ar
				}
			}
		}
	}
	return order
}

// marshalReport serializes a run report for a finished record with the
// trace events stripped: they dominate the encoding and replay needs the
// result, not the flame graph.
func marshalReport(rep *core.RunReport) json.RawMessage {
	if rep == nil {
		return nil
	}
	r := *rep
	r.TraceEvents = nil
	b, err := json.Marshal(&r)
	if err != nil {
		return nil
	}
	return b
}

func marshalAdaptive(ar *core.AdaptiveReport) json.RawMessage {
	if ar == nil {
		return nil
	}
	a := *ar
	a.TraceEvents = nil
	b, err := json.Marshal(&a)
	if err != nil {
		return nil
	}
	return b
}

// journaledStore wraps a job's in-memory checkpoint store so every saved
// round snapshot also lands in the journal: the job's resume state then
// survives the process, not just the retry loop.
type journaledStore struct {
	inner *checkpoint.MemStore
	sched *Scheduler
	job   string
}

func (js *journaledStore) Save(s checkpoint.Snapshot) error {
	if err := js.inner.Save(s); err != nil {
		return err
	}
	js.sched.journalAppend(Record{
		Type:     recCheckpointed,
		Job:      js.job,
		Round:    s.Round,
		Snapshot: checkpoint.Encode(s),
	})
	return nil
}

func (js *journaledStore) Latest() (checkpoint.Snapshot, bool) {
	return js.inner.Latest()
}
