package sched

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/guard"
)

// Overload-control sentinels. Both are matched through errors.Is against
// the concrete *ShedError the scheduler returns.
var (
	// ErrShed reports a submission denied by the overload-control layer
	// (adaptive limit, rate smoothing, or unaffordable deadline). Shed
	// work is healthy to retry after the error's RetryAfter hint; the
	// HTTP layer maps it to 429 with a Retry-After header.
	ErrShed = errors.New("sched: submission shed")
	// ErrBreakerOpen reports a submission denied because its backend's
	// circuit breaker is open (or half-open with the probe slot taken).
	// The HTTP layer maps it to 503: the backend, not the client's rate,
	// is the problem.
	ErrBreakerOpen = errors.New("sched: backend circuit breaker open")
)

// ShedError is an admission denial from the guard, carrying the reason
// and the suggested client back-off. errors.Is(err, ErrShed) matches
// every denial; errors.Is(err, ErrBreakerOpen) matches breaker denials
// specifically.
type ShedError struct {
	// Reason classifies the denial (guard.ReasonLimit, ReasonRate,
	// ReasonDeadline or ReasonBreakerOpen).
	Reason guard.Reason
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

// Error renders the denial.
func (e *ShedError) Error() string {
	if e.Reason == guard.ReasonBreakerOpen {
		return fmt.Sprintf("sched: backend circuit breaker open, retry after %v", e.RetryAfter.Round(time.Millisecond))
	}
	return fmt.Sprintf("sched: submission shed (%s), retry after %v", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// Is implements errors.Is matching against the sentinels.
func (e *ShedError) Is(target error) bool {
	switch target {
	case ErrShed:
		return true
	case ErrBreakerOpen:
		return e.Reason == guard.ReasonBreakerOpen
	}
	return false
}

// RetryAfterHint extracts the client back-off from an admission error:
// the guard's hint for sheds, a default second for plain queue-full and
// drain rejections (both clear quickly or not at all), 0/false for
// errors that carry no hint.
func RetryAfterHint(err error) (time.Duration, bool) {
	var se *ShedError
	if errors.As(err, &se) {
		return se.RetryAfter, true
	}
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
		return time.Second, true
	}
	return 0, false
}

// backendKey names the (network, fault-profile) backend a job runs
// against — the circuit-breaker key. Keying on the fault plan too keeps
// deliberate chaos jobs from tripping the breaker for clean jobs on the
// same network. Sequential jobs have no backend and are never broken.
func (spec *JobSpec) backendKey() string {
	if spec.Network == nil {
		return ""
	}
	return spec.Network.Name + "|" + spec.Params.Faults.Fingerprint()
}

// Guard returns the scheduler's overload controller (nil when off).
func (s *Scheduler) Guard() *guard.Controller { return s.cfg.Guard }

// GuardState snapshots the overload-control layer for /stats and
// /readyz (the zero State when the guard is off).
func (s *Scheduler) GuardState() guard.State { return s.cfg.Guard.State() }

// noteShed counts one guard denial.
func (s *Scheduler) noteShed(reason guard.Reason) {
	s.mu.Lock()
	s.ctr.rejected++
	if reason == guard.ReasonBreakerOpen {
		s.ctr.breakerRejects++
	} else {
		s.ctr.shed++
	}
	s.mu.Unlock()
	s.tel.rejectedInc()
	s.tel.shedInc(string(reason))
}

// noteExpired counts one queued job whose deadline passed before
// dispatch. The job is settled without ever running — the whole point.
func (s *Scheduler) noteExpired() {
	s.mu.Lock()
	s.ctr.expired++
	s.mu.Unlock()
	s.tel.expiredInc()
}

// noteHedge counts one hedge attempt launched against j.
func (s *Scheduler) noteHedge(j *Job) {
	j.mu.Lock()
	j.hedged = true
	j.mu.Unlock()
	s.mu.Lock()
	s.ctr.hedges++
	s.mu.Unlock()
	s.tel.hedgeInc()
}

// noteHedgeWin counts one hedge attempt that finished before its
// primary.
func (s *Scheduler) noteHedgeWin(j *Job) {
	j.mu.Lock()
	j.hedgeWon = true
	j.mu.Unlock()
	s.mu.Lock()
	s.ctr.hedgeWins++
	s.mu.Unlock()
	s.tel.hedgeWinInc()
}
