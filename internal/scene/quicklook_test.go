package scene

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteQuicklookPPM(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	var buf bytes.Buffer
	if err := WriteQuicklook(&buf, sc.Cube); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	wantHeader := fmt.Sprintf("P6\n%d %d\n255\n", sc.Cube.Samples, sc.Cube.Lines)
	if !bytes.HasPrefix(out, []byte(wantHeader)) {
		t.Fatalf("PPM header = %q", out[:20])
	}
	wantLen := len(wantHeader) + sc.Cube.NumPixels()*3
	if len(out) != wantLen {
		t.Errorf("PPM size %d, want %d", len(out), wantLen)
	}
	// The image must not be flat: vegetation vs water vs debris differ.
	body := out[len(wantHeader):]
	min, max := body[0], body[0]
	for _, b := range body {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if max-min < 100 {
		t.Errorf("quicklook has no contrast: %d..%d", min, max)
	}
}

func TestHotSpotOverlayMarksTargets(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	var buf bytes.Buffer
	if err := sc.WriteHotSpotOverlay(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	header := fmt.Sprintf("P6\n%d %d\n255\n", sc.Cube.Samples, sc.Cube.Lines)
	body := out[len(header):]
	for _, h := range sc.Truth.HotSpots {
		at := (h.Line*sc.Cube.Samples + h.Sample) * 3
		if body[at] != 255 || body[at+1] != 32 {
			t.Errorf("hot spot %s not marked red: %v", h.Label, body[at:at+3])
		}
	}
}

func TestSaveQuicklookFile(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	path := filepath.Join(t.TempDir(), "fig1.ppm")
	if err := SaveQuicklook(path, sc.Cube); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < int64(sc.Cube.NumPixels()*3) {
		t.Errorf("file too small: %d bytes", info.Size())
	}
	if err := SaveQuicklook(filepath.Join(t.TempDir(), "missing", "x.ppm"), sc.Cube); err == nil {
		t.Error("unwritable path: expected error")
	}
}

func TestNearestBand(t *testing.T) {
	// With 224 bands over 0.4-2.5um, 0.655um lands near band 27.
	b := nearestBand(224, 0.655)
	wl := 0.4 + (2.5-0.4)*float64(b)/223
	if wl < 0.64 || wl > 0.67 {
		t.Errorf("nearest band %d has wavelength %v", b, wl)
	}
	if nearestBand(10, 0.0) != 0 || nearestBand(10, 99) != 9 {
		t.Error("extremes should clamp to first/last band")
	}
}

func TestPercentilesAndStretch(t *testing.T) {
	img := make([]float32, 1000)
	for i := range img {
		img[i] = float32(i)
	}
	lo, hi := percentiles(img, 0.02, 0.98)
	if lo < 10 || lo > 40 || hi < 950 || hi > 990 {
		t.Errorf("percentiles = %v, %v", lo, hi)
	}
	if stretch(lo-1, lo, hi) != 0 || stretch(hi+1, lo, hi) != 255 {
		t.Error("stretch clamping wrong")
	}
	mid := stretch((lo+hi)/2, lo, hi)
	if mid < 120 || mid > 135 {
		t.Errorf("midpoint stretch = %d", mid)
	}
	// Degenerate flat image must not divide by zero.
	flat := []float32{5, 5, 5}
	lo, hi = percentiles(flat, 0.02, 0.98)
	if hi <= lo {
		t.Error("flat percentiles degenerate")
	}
}
