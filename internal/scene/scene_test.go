package scene

import (
	"math"
	"testing"

	"repro/internal/spectral"
)

func testConfig() Config {
	return Config{Lines: 48, Samples: 40, Bands: 32, Seed: 1}
}

func mustGenerate(t *testing.T, cfg Config) *Scene {
	t.Helper()
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestGenerateValidation(t *testing.T) {
	for _, bad := range []Config{
		{Lines: 8, Samples: 40, Bands: 32},
		{Lines: 40, Samples: 8, Bands: 32},
		{Lines: 40, Samples: 40, Bands: 4},
	} {
		if _, err := Generate(bad); err == nil {
			t.Errorf("Generate(%+v): expected error", bad)
		}
	}
}

func TestGenerateGeometry(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	c := sc.Cube
	if c.Lines != 48 || c.Samples != 40 || c.Bands != 32 {
		t.Fatalf("cube geometry %dx%dx%d", c.Lines, c.Samples, c.Bands)
	}
	if len(sc.Truth.ClassMap) != c.NumPixels() {
		t.Errorf("class map length %d", len(sc.Truth.ClassMap))
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := mustGenerate(t, testConfig())
	b := mustGenerate(t, testConfig())
	for i := range a.Cube.Data {
		if a.Cube.Data[i] != b.Cube.Data[i] {
			t.Fatal("same seed produced different scenes")
		}
	}
	cfg := testConfig()
	cfg.Seed = 2
	c := mustGenerate(t, cfg)
	same := true
	for i := range a.Cube.Data {
		if a.Cube.Data[i] != c.Cube.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical scenes")
	}
}

func TestSevenHotSpotsPlanted(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	if len(sc.Truth.HotSpots) != 7 {
		t.Fatalf("planted %d hot spots", len(sc.Truth.HotSpots))
	}
	seen := map[string]bool{}
	pos := map[[2]int]bool{}
	for _, h := range sc.Truth.HotSpots {
		seen[h.Label] = true
		key := [2]int{h.Line, h.Sample}
		if pos[key] {
			t.Errorf("hot spots collide at %v", key)
		}
		pos[key] = true
		if h.Line < 0 || h.Line >= sc.Cube.Lines || h.Sample < 0 || h.Sample >= sc.Cube.Samples {
			t.Errorf("hot spot %s outside the scene", h.Label)
		}
		// Hot spot pixels must be inside the debris field.
		if sc.Truth.ClassMap[sc.Cube.FlatIndex(h.Line, h.Sample)] == -1 {
			t.Errorf("hot spot %s outside the debris field", h.Label)
		}
		if len(h.Signature) != sc.Cube.Bands {
			t.Errorf("hot spot %s signature has %d bands", h.Label, len(h.Signature))
		}
	}
	for _, want := range HotSpotLabels {
		if !seen[want] {
			t.Errorf("hot spot %s missing", want)
		}
	}
}

func TestHotSpotTemperatures(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	byLabel := map[string]HotSpot{}
	for _, h := range sc.Truth.HotSpots {
		byLabel[h.Label] = h
	}
	if byLabel["F"].TempF != 700 {
		t.Errorf("F temperature = %v, want 700", byLabel["F"].TempF)
	}
	if byLabel["G"].TempF != 1300 {
		t.Errorf("G temperature = %v, want 1300", byLabel["G"].TempF)
	}
	for label, h := range byLabel {
		if h.TempF < 700 || h.TempF > 1300 {
			t.Errorf("hot spot %s temperature %v outside 700-1300F", label, h.TempF)
		}
	}
}

func TestHotSpotsAreBrightest(t *testing.T) {
	// The ATDCA seed step picks the brightest pixel of the scene; that
	// must be one of the planted targets (hotter = brighter).
	sc := mustGenerate(t, testConfig())
	c := sc.Cube
	best, bestB := 0, -1.0
	for p := 0; p < c.NumPixels(); p++ {
		if b := c.Brightness(p); b > bestB {
			best, bestB = p, b
		}
	}
	l, s := c.Coord(best)
	for _, h := range sc.Truth.HotSpots {
		if h.Line == l && h.Sample == s {
			if h.Label != "G" {
				t.Logf("brightest pixel is hot spot %s (G expected but any target acceptable)", h.Label)
			}
			return
		}
	}
	t.Errorf("brightest pixel (%d,%d) is not a planted target", l, s)
}

func TestHotSpotFIsFaintest(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	c := sc.Cube
	var f, g float64
	for _, h := range sc.Truth.HotSpots {
		b := c.Brightness(c.FlatIndex(h.Line, h.Sample))
		switch h.Label {
		case "F":
			f = b
		case "G":
			g = b
		}
	}
	if f >= g {
		t.Errorf("700F target brightness %v not below 1300F target %v", f, g)
	}
}

func TestClassMapCoversSevenClasses(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	counts := map[int]int{}
	for _, cls := range sc.Truth.ClassMap {
		counts[cls]++
	}
	if counts[-1] == 0 {
		t.Error("no background pixels")
	}
	for cls := 0; cls < NumClasses; cls++ {
		if counts[cls] == 0 {
			t.Errorf("class %d (%s) has no pixels", cls, ClassNames[cls])
		}
	}
	if len(sc.Truth.ClassSigs) != NumClasses {
		t.Errorf("%d class signatures", len(sc.Truth.ClassSigs))
	}
}

func TestClassMapSpatiallyCoherent(t *testing.T) {
	// Voronoi patches: most debris pixels share a class with their right
	// neighbour.
	sc := mustGenerate(t, testConfig())
	c := sc.Cube
	same, total := 0, 0
	for l := 0; l < c.Lines; l++ {
		for s := 0; s+1 < c.Samples; s++ {
			a := sc.Truth.ClassMap[c.FlatIndex(l, s)]
			b := sc.Truth.ClassMap[c.FlatIndex(l, s+1)]
			if a == -1 || b == -1 {
				continue
			}
			total++
			if a == b {
				same++
			}
		}
	}
	if total == 0 {
		t.Fatal("no adjacent debris pairs")
	}
	// The test scene's debris zone is only ~19x16 pixels, so Voronoi
	// borders claim a sizeable share; 0.75 still asserts coherent patches.
	if frac := float64(same) / float64(total); frac < 0.75 {
		t.Errorf("spatial coherence %v, want >= 0.75", frac)
	}
}

func TestDebrisPixelsResembleTheirClass(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	c := sc.Cube
	hot := map[int]bool{}
	for _, h := range sc.Truth.HotSpots {
		hot[c.FlatIndex(h.Line, h.Sample)] = true
	}
	agree, total := 0, 0
	for p := 0; p < c.NumPixels(); p++ {
		cls := sc.Truth.ClassMap[p]
		if cls == -1 || hot[p] {
			continue
		}
		got, _ := spectral.MostSimilar(c.PixelAt(p), sc.Truth.ClassSigs)
		total++
		if got == cls {
			agree++
		}
	}
	// Classes are deliberately similar; still, most pixels should match
	// their own class signature best.
	if frac := float64(agree) / float64(total); frac < 0.6 {
		t.Errorf("only %v of debris pixels closest to their own class", frac)
	}
}

func TestShadowPixelsAreDim(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	if len(sc.Truth.ShadowPixels) == 0 {
		t.Fatal("no shadow pixels planted")
	}
	stats := sc.Cube.ComputeStats()
	for _, p := range sc.Truth.ShadowPixels {
		v := sc.Cube.PixelAt(p)
		var mean float64
		for _, x := range v {
			mean += float64(x)
		}
		mean /= float64(len(v))
		if mean > stats.Mean {
			t.Errorf("shadow pixel %d brighter than the scene mean", p)
		}
		if sc.Truth.ClassMap[p] != -1 {
			t.Errorf("shadow pixel %d inside the debris field", p)
		}
	}
}

func TestShadowsDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.ShadowFraction = -1
	sc := mustGenerate(t, cfg)
	if len(sc.Truth.ShadowPixels) != 0 {
		t.Errorf("planted %d shadows with shadows disabled", len(sc.Truth.ShadowPixels))
	}
}

func TestNoiseLevelTracksSNR(t *testing.T) {
	clean := testConfig()
	clean.SNRdB = 60
	noisy := testConfig()
	noisy.SNRdB = 15
	a := mustGenerate(t, clean)
	b := mustGenerate(t, noisy)
	// Compare each scene's high-frequency band-to-band variation on a
	// background pixel; the noisy scene must show more.
	rough := func(sc *Scene) float64 {
		v := sc.Cube.Pixel(1, 1)
		var r float64
		for i := 1; i < len(v); i++ {
			d := float64(v[i] - v[i-1])
			r += d * d
		}
		return r
	}
	if rough(b) <= rough(a) {
		t.Error("lower SNR did not increase band-to-band roughness")
	}
}

func TestAllSamplesFiniteNonNegative(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	for i, v := range sc.Cube.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			t.Fatalf("sample %d = %v", i, v)
		}
	}
}

func TestLibraryContents(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	for _, name := range append([]string{"vegetation", "asphalt", "water", "smoke", "generic dust"}, ClassNames...) {
		if _, ok := sc.Library.Get(name); !ok {
			t.Errorf("library missing %q", name)
		}
	}
}

func TestDebrisClassesSpectrallySimilarButDistinct(t *testing.T) {
	sc := mustGenerate(t, testConfig())
	for i := 0; i < NumClasses; i++ {
		for j := i + 1; j < NumClasses; j++ {
			d := spectral.SAD(sc.Truth.ClassSigs[i], sc.Truth.ClassSigs[j])
			if d == 0 {
				t.Errorf("classes %d and %d identical", i, j)
			}
			if d > 0.6 {
				t.Errorf("classes %d and %d too dissimilar (%v): unrealistically easy", i, j, d)
			}
		}
	}
}

func TestWTCConfigs(t *testing.T) {
	d := WTCDefault()
	if d.Lines <= 0 || d.Samples <= 0 || d.Bands <= 0 {
		t.Errorf("WTCDefault = %+v", d)
	}
	f := WTCFull()
	if f.Lines != 2133 || f.Samples != 512 || f.Bands != 224 {
		t.Errorf("WTCFull = %+v, want the paper's geometry", f)
	}
}

func TestHotSpotThermalShapeSurvivesMixing(t *testing.T) {
	// The planted pixel should still be closest to its own thermal
	// signature among all hot-spot signatures.
	sc := mustGenerate(t, testConfig())
	for _, h := range sc.Truth.HotSpots {
		pixel := sc.Cube.Pixel(h.Line, h.Sample)
		if d := spectral.SAD(pixel, h.Signature); d > 0.5 {
			t.Errorf("hot spot %s pixel drifted too far from its signature: SAD=%v", h.Label, d)
		}
	}
}

func BenchmarkKernelSceneGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{Lines: 128, Samples: 64, Bands: 48, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
