package scene

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/cube"
	"repro/internal/spectral"
)

// This file renders false-color quicklooks like Figure 1 of the paper:
// the left panel mapped the 1682, 1107 and 655 nm AVIRIS channels to red,
// green and blue; the right panel marked the thermal hot spots.

// Figure1Wavelengths are the channel centers (micrometers) of the paper's
// false-color composite.
var Figure1Wavelengths = [3]float64{1.682, 1.107, 0.655}

// nearestBand returns the band whose center wavelength is closest to the
// requested one.
func nearestBand(bands int, micron float64) int {
	wl := spectral.Wavelengths(bands)
	best, bestD := 0, math.Inf(1)
	for i, w := range wl {
		if d := math.Abs(w - micron); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// WriteQuicklook renders the cube as a binary PPM (P6) false-color
// composite using the Figure 1 channel mapping, contrast-stretched to the
// 2nd-98th percentile per channel.
func WriteQuicklook(w io.Writer, c *cube.Cube) error {
	bandsRGB := [3]int{
		nearestBand(c.Bands, Figure1Wavelengths[0]),
		nearestBand(c.Bands, Figure1Wavelengths[1]),
		nearestBand(c.Bands, Figure1Wavelengths[2]),
	}
	// Percentile stretch per channel.
	var lo, hi [3]float32
	for ch, b := range bandsRGB {
		img, err := c.BandImage(b)
		if err != nil {
			return err
		}
		lo[ch], hi[ch] = percentiles(img, 0.02, 0.98)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", c.Samples, c.Lines); err != nil {
		return err
	}
	pix := make([]byte, 3)
	for l := 0; l < c.Lines; l++ {
		for s := 0; s < c.Samples; s++ {
			for ch, b := range bandsRGB {
				v := c.At(l, s, b)
				pix[ch] = stretch(v, lo[ch], hi[ch])
			}
			if _, err := bw.Write(pix); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteHotSpotOverlay renders the quicklook with the ground-truth hot
// spots marked as 3x3 bright red squares — the right panel of Figure 1.
func (sc *Scene) WriteHotSpotOverlay(w io.Writer) error {
	// Render into memory first, then overlay.
	c := sc.Cube
	bandsRGB := [3]int{
		nearestBand(c.Bands, Figure1Wavelengths[0]),
		nearestBand(c.Bands, Figure1Wavelengths[1]),
		nearestBand(c.Bands, Figure1Wavelengths[2]),
	}
	var lo, hi [3]float32
	for ch, b := range bandsRGB {
		img, err := c.BandImage(b)
		if err != nil {
			return err
		}
		lo[ch], hi[ch] = percentiles(img, 0.02, 0.98)
	}
	buf := make([]byte, c.Lines*c.Samples*3)
	for l := 0; l < c.Lines; l++ {
		for s := 0; s < c.Samples; s++ {
			at := (l*c.Samples + s) * 3
			for ch, b := range bandsRGB {
				buf[at+ch] = stretch(c.At(l, s, b), lo[ch], hi[ch])
			}
		}
	}
	mark := func(l, s int) {
		if l < 0 || l >= c.Lines || s < 0 || s >= c.Samples {
			return
		}
		at := (l*c.Samples + s) * 3
		buf[at], buf[at+1], buf[at+2] = 255, 32, 32
	}
	for _, h := range sc.Truth.HotSpots {
		for dl := -1; dl <= 1; dl++ {
			for ds := -1; ds <= 1; ds++ {
				mark(h.Line+dl, h.Sample+ds)
			}
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", c.Samples, c.Lines); err != nil {
		return err
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveQuicklook writes the false-color composite to a PPM file.
func SaveQuicklook(path string, c *cube.Cube) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scene: %w", err)
	}
	if err := WriteQuicklook(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// percentiles returns the approximate p-lo and p-hi percentile values of
// img via a 1024-bin histogram.
func percentiles(img []float32, pLo, pHi float64) (float32, float32) {
	if len(img) == 0 {
		return 0, 1
	}
	min, max := img[0], img[0]
	for _, v := range img {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max <= min {
		return min, min + 1
	}
	const bins = 1024
	var hist [bins]int
	scale := float32(bins-1) / (max - min)
	for _, v := range img {
		hist[int((v-min)*scale)]++
	}
	loCount := int(pLo * float64(len(img)))
	hiCount := int(pHi * float64(len(img)))
	var lo, hi float32 = min, max
	acc := 0
	for b := 0; b < bins; b++ {
		acc += hist[b]
		if acc >= loCount {
			lo = min + float32(b)/scale
			break
		}
	}
	acc = 0
	for b := 0; b < bins; b++ {
		acc += hist[b]
		if acc >= hiCount {
			hi = min + float32(b)/scale
			break
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}

// stretch maps v into 0..255 within [lo, hi].
func stretch(v, lo, hi float32) byte {
	if v <= lo {
		return 0
	}
	if v >= hi {
		return 255
	}
	return byte(255 * (v - lo) / (hi - lo))
}
