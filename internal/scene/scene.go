// Package scene generates synthetic AVIRIS-like hyperspectral scenes
// modeled on the World Trade Center data set of the paper, together with
// the ground truth needed to reproduce its accuracy tables.
//
// The real scene (2133x512 pixels, 224 bands, collected 2001-09-16, with
// USGS field ground truth) is not redistributable, so the generator plants
// the same *structure*:
//
//   - a background of vegetation, asphalt and water (the false-color
//     composite of Fig. 1: vegetated areas, burned areas, the Hudson);
//   - a debris field of seven spatially coherent dust/debris classes with
//     the USGS labels of Table 4, spectrally similar to one another (the
//     concretes and dusts are hard to separate, as in the real scene);
//   - a smoke plume of mixed pixels drifting from the debris field;
//   - seven thermal hot spots 'A'..'G' (Fig. 1 right) with blackbody-like
//     signatures between 700F ('F') and 1300F ('G');
//   - shadowed pixels: background spectra scaled far below unit
//     illumination. These are the pixels a fully constrained (sum-to-one)
//     mixture model cannot explain, so they attract UFCLS away from dim
//     genuine targets — the mechanism behind UFCLS's misses in Table 3 —
//     while leaving orthogonal-projection methods (ATDCA) unaffected.
//
// All generation is deterministic given Config.Seed.
package scene

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cube"
	"repro/internal/par"
	"repro/internal/spectral"
)

// RNG stream identifiers for derived per-row generators. Painting and
// noise draw from disjoint streams so neither can alias the other (or the
// scene-level generator) at any row index.
const (
	streamPaint = 11
	streamNoise = 8
)

// derivedSeed derives an independent RNG seed for one row of one stream
// from the scene seed, using the splitmix64 finalizer. Rows seed their own
// generators, so the random content of a row depends only on (seed,
// stream, row) — never on which goroutine paints it or how rows are
// chunked — which is what keeps parallel generation deterministic.
func derivedSeed(seed int64, stream, idx uint64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*((stream<<32|idx)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ClassNames are the seven USGS dust/debris classes of Table 4.
var ClassNames = []string{
	"Concrete (WTC01-37B)",
	"Concrete (WTC01-37Am)",
	"Cement (WTC01-37A)",
	"Dust (WTC01-15)",
	"Dust (WTC01-28)",
	"Dust (WTC01-36)",
	"Gypsum wall board",
}

// NumClasses is the paper's c=7 debris classes.
const NumClasses = 7

// HotSpotLabels are the thermal hot spots of Fig. 1 (right).
var HotSpotLabels = []string{"A", "B", "C", "D", "E", "F", "G"}

// HotSpotTemperaturesF maps each hot spot to its temperature in
// Fahrenheit. The paper pins 'F' at 700F and 'G' at 1300F; the rest are
// interpolated across the reported 700-1300F range.
var HotSpotTemperaturesF = map[string]float64{
	"A": 1000, "B": 1150, "C": 1100, "D": 950, "E": 850, "F": 700, "G": 1300,
}

// Config parameterizes scene generation.
type Config struct {
	Lines   int // spatial rows (paper: 2133)
	Samples int // spatial columns (paper: 512)
	Bands   int // spectral bands (paper: 224)
	Seed    int64
	// SNRdB is the per-band signal-to-noise ratio; 0 selects DefaultSNRdB.
	SNRdB float64
	// ShadowFraction is the fraction of background pixels rendered in
	// deep shadow; negative disables shadows, 0 selects the default.
	ShadowFraction float64
}

// DefaultSNRdB approximates AVIRIS-class radiometric quality.
const DefaultSNRdB = 30

// defaultShadowFraction puts ~2.5% of the background in deep shadow.
const defaultShadowFraction = 0.025

// HotSpot is one planted thermal target.
type HotSpot struct {
	Label        string
	Line, Sample int
	TempF        float64
	// Signature is the pure thermal signature mixed into the pixel.
	Signature []float32
}

// GroundTruth carries everything needed to score detection and
// classification results.
type GroundTruth struct {
	HotSpots []HotSpot
	// ClassMap labels each pixel with a debris class 0..6, or -1 for
	// background (vegetation, asphalt, water, plume).
	ClassMap []int
	// ClassSigs are the pure signatures of the seven debris classes.
	ClassSigs [][]float32
	// ShadowPixels lists the flat indices rendered in deep shadow.
	ShadowPixels []int
}

// Scene couples a generated cube with its ground truth and the endmember
// library used to synthesize it.
type Scene struct {
	Cube    *cube.Cube
	Truth   *GroundTruth
	Library *spectral.Library
	Config  Config
}

// minDimension guards against scenes too small to hold the debris field
// and seven separated hot spots.
const minDimension = 16

// Generate builds a scene. Lines and Samples must be at least 16 and
// Bands at least 8.
func Generate(cfg Config) (*Scene, error) {
	if cfg.Lines < minDimension || cfg.Samples < minDimension {
		return nil, fmt.Errorf("scene: %dx%d too small (need at least %dx%d)", cfg.Lines, cfg.Samples, minDimension, minDimension)
	}
	if cfg.Bands < 8 {
		return nil, fmt.Errorf("scene: %d bands too few (need at least 8)", cfg.Bands)
	}
	if cfg.SNRdB == 0 {
		cfg.SNRdB = DefaultSNRdB
	}
	switch {
	case cfg.ShadowFraction == 0:
		cfg.ShadowFraction = defaultShadowFraction
	case cfg.ShadowFraction < 0:
		cfg.ShadowFraction = 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Bands

	lib := buildLibrary(n)
	classSigs := make([][]float32, NumClasses)
	for i, name := range ClassNames {
		s, ok := lib.Get(name)
		if !ok {
			panic("scene: library missing class " + name)
		}
		classSigs[i] = s
	}
	veg, _ := lib.Get("vegetation")
	asphalt, _ := lib.Get("asphalt")
	water, _ := lib.Get("water")
	smoke, _ := lib.Get("smoke")
	dustGeneric, _ := lib.Get("generic dust")

	c := cube.MustNew(cfg.Lines, cfg.Samples, n)
	truth := &GroundTruth{
		ClassMap:  make([]int, c.NumPixels()),
		ClassSigs: classSigs,
	}
	for i := range truth.ClassMap {
		truth.ClassMap[i] = -1
	}

	// Debris field: the central rectangle, covering ~30% of the scene.
	dz := debrisZone(cfg)
	seeds := voronoiSeeds(rng, dz)
	modes := plumeModes(n)
	turb := newTurbulence(rng)

	// Pass 1: assign the debris class map (needed to grade mixing by
	// distance to the nearest patch border in pass 2). Rows are independent
	// and draw no randomness, so they fan out over the par budget.
	par.Lines(dz.lines(), 1, func(_, lo, hi int) {
		for l := dz.l0 + lo; l < dz.l0+hi; l++ {
			for s := dz.s0; s < dz.s1; s++ {
				truth.ClassMap[c.FlatIndex(l, s)] = nearestSeedClass(seeds, l, s)
			}
		}
	})

	// Pass 2: paint every pixel. Each row seeds its own generator from
	// (Seed, streamPaint, row), so the painted scene is a pure function of
	// the configuration — independent of the worker budget and of how rows
	// are chunked across goroutines.
	par.Lines(cfg.Lines, 1, func(_, lo, hi int) {
		for l := lo; l < hi; l++ {
			rowRng := rand.New(rand.NewSource(derivedSeed(cfg.Seed, streamPaint, uint64(l))))
			for s := 0; s < cfg.Samples; s++ {
				p := c.FlatIndex(l, s)
				var sig []float32
				switch {
				case dz.contains(l, s):
					cls := truth.ClassMap[p]
					// Debris is intimately mixed, most of all at patch
					// borders, where the sensor's point spread blends the
					// adjacent materials: interiors run ~90% pure, border
					// pixels drop toward 60%. The graded borders produce the
					// paper's gradual per-class accuracy spread rather than
					// an all-or-nothing class collapse.
					other, dist := neighbourClass(truth.ClassMap, c, l, s)
					if other < 0 {
						other = (cls + 1 + rowRng.Intn(NumClasses-1)) % NumClasses
					}
					var a float64
					switch dist {
					case 1: // immediate border: a coin-flip mixture
						a = 0.48 + 0.05*rowRng.Float64()
					case 2:
						a = 0.66 + 0.05*rowRng.Float64()
					case 3:
						a = 0.80 + 0.05*rowRng.Float64()
					default: // interior
						a = 0.88 + 0.04*rowRng.Float64()
					}
					b := (1 - a) * 0.7
					sig = spectral.Mix(
						[][]float32{classSigs[cls], classSigs[other], dustGeneric},
						[]float64{a, b, 1 - a - b})
				case l < cfg.Lines/5:
					sig = mixBackground(rowRng, veg, asphalt)
				case l >= cfg.Lines-cfg.Lines/6:
					sig = mixBackground(rowRng, water, asphalt)
				default:
					sig = mixBackground(rowRng, asphalt, veg)
				}
				// Smoke plume: a diagonal streak from the debris field toward
				// the lower-left (Battery Park), as in Fig. 1. Plume pixels
				// carry signed low-dimensional scattering variability (see
				// plumeModes) in addition to the mean smoke spectrum.
				if w := plumeWeight(cfg, dz, l, s); w > 0 {
					sig = spectral.Mix([][]float32{sig, smoke}, []float64{1 - w, w})
					sig = perturbWithModes(sig, modes, turb.coefficients(rowRng, l, s, 0.62*w))
				}
				c.SetPixel(l, s, sig)
			}
		}
	})

	// Thermal hot spots: one pixel each, spread over the debris field.
	truth.HotSpots = plantHotSpots(c, dz, n)

	// Deep shadow pixels in the background.
	if cfg.ShadowFraction > 0 {
		truth.ShadowPixels = plantShadows(rng, c, truth, cfg.ShadowFraction)
	}

	// Additive Gaussian noise at the configured SNR.
	addNoise(cfg.Seed, c, cfg.SNRdB)

	return &Scene{Cube: c, Truth: truth, Library: lib, Config: cfg}, nil
}

// rect is an inclusive-exclusive rectangle of pixels.
type rect struct{ l0, l1, s0, s1 int }

func (r rect) contains(l, s int) bool { return l >= r.l0 && l < r.l1 && s >= r.s0 && s < r.s1 }
func (r rect) lines() int             { return r.l1 - r.l0 }
func (r rect) samples() int           { return r.s1 - r.s0 }

func debrisZone(cfg Config) rect {
	return rect{
		l0: cfg.Lines * 3 / 10, l1: cfg.Lines * 7 / 10,
		s0: cfg.Samples * 3 / 10, s1: cfg.Samples * 7 / 10,
	}
}

// voronoiSeed assigns a debris class to a region of the debris zone.
type voronoiSeed struct {
	l, s  int
	class int
}

// voronoiSeeds scatters two seeds per class so each class forms one or two
// coherent patches.
func voronoiSeeds(rng *rand.Rand, dz rect) []voronoiSeed {
	seeds := make([]voronoiSeed, 0, 2*NumClasses)
	for cls := 0; cls < NumClasses; cls++ {
		for k := 0; k < 2; k++ {
			seeds = append(seeds, voronoiSeed{
				l:     dz.l0 + rng.Intn(dz.lines()),
				s:     dz.s0 + rng.Intn(dz.samples()),
				class: cls,
			})
		}
	}
	return seeds
}

func nearestSeedClass(seeds []voronoiSeed, l, s int) int {
	best, bestD := 0, math.MaxInt64
	for i, sd := range seeds {
		d := (sd.l-l)*(sd.l-l) + (sd.s-s)*(sd.s-s)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return seeds[best].class
}

// neighbourClass scans growing rings around (l,s) for the nearest pixel
// of a different debris class. It returns that class and the ring
// distance (1..3); (-1, 4) when no foreign class lies within 3 pixels.
func neighbourClass(classMap []int, c *cube.Cube, l, s int) (int, int) {
	own := classMap[c.FlatIndex(l, s)]
	for r := 1; r <= 3; r++ {
		for dl := -r; dl <= r; dl++ {
			for ds := -r; ds <= r; ds++ {
				if dl > -r && dl < r && ds > -r && ds < r {
					continue // interior of the ring, already visited
				}
				nl, ns := l+dl, s+ds
				if nl < 0 || nl >= c.Lines || ns < 0 || ns >= c.Samples {
					continue
				}
				if cls := classMap[c.FlatIndex(nl, ns)]; cls >= 0 && cls != own {
					return cls, r
				}
			}
		}
	}
	return -1, 4
}

// mixBackground blends a dominant and a secondary background material
// with mild random abundance jitter.
func mixBackground(rng *rand.Rand, dominant, secondary []float32) []float32 {
	a := 0.8 + 0.15*rng.Float64()
	return spectral.Mix([][]float32{dominant, secondary}, []float64{a, 1 - a})
}

// plumeModes builds a small set of signed spectral variation modes for
// the smoke plume, modelling turbulent variability of the aerosol
// scattering around the mean smoke spectrum (droplet size and density
// fluctuations). Each mode has a positive and a negative lobe. Because a
// plume pixel adds these modes with signed Gaussian coefficients, the
// plume occupies a low-dimensional *linear* subspace — a handful of
// orthogonal-projection targets annihilate it, so ATDCA spends almost no
// budget there — while individual pixels fall outside the *non-negative
// simplex* of any endmember set, so the fully constrained UFCLS keeps
// finding large reconstruction errors in the plume. This asymmetry is
// what reproduces UFCLS's misses in Table 3.
func plumeModes(n int) [][]float64 {
	wl := spectral.Wavelengths(n)
	lobes := [][2]float64{ // positive lobe center, negative lobe center
		{0.55, 0.90},
		{1.10, 1.60},
		{1.90, 2.35},
	}
	modes := make([][]float64, len(lobes))
	for k, lb := range lobes {
		m := make([]float64, n)
		for i, w := range wl {
			dp := (w - lb[0]) / 0.10
			dn := (w - lb[1]) / 0.10
			m[i] = math.Exp(-0.5*dp*dp) - math.Exp(-0.5*dn*dn)
		}
		modes[k] = m
	}
	return modes
}

// turbulence generates smooth spatial fields of signed mode coefficients:
// the plume's scattering state varies on a ~15-pixel length scale, so
// neighbouring pixels agree (keeping the spectral angle between plume
// neighbours small — the plume is not a morphological-eccentricity
// hotspot) while pixels across the plume still span the signed mode
// subspace that defeats the fully constrained mixture model.
type turbulence struct {
	freqL, freqS [3]float64
	phase        [3]float64
}

func newTurbulence(rng *rand.Rand) turbulence {
	var t turbulence
	for k := 0; k < 3; k++ {
		t.freqL[k] = (0.5 + rng.Float64()) / 15
		t.freqS[k] = (0.5 + rng.Float64()) / 15
		t.phase[k] = 2 * math.Pi * rng.Float64()
	}
	return t
}

// coefficients returns the three mode coefficients at (l,s) with the
// given amplitude: a smooth sinusoidal field plus a per-pixel Gaussian
// component. The per-pixel part is what defeats the fully constrained
// mixture model pixel by pixel (each plume pixel is its own corner of the
// signed mode subspace); the smooth part keeps the field physical.
func (t turbulence) coefficients(rng *rand.Rand, l, s int, amp float64) [3]float64 {
	var g [3]float64
	for k := 0; k < 3; k++ {
		smooth := math.Sin(2*math.Pi*(t.freqL[k]*float64(l)+t.freqS[k]*float64(s)) + t.phase[k])
		g[k] = amp * (0.5*smooth + 1.1*rng.NormFloat64())
	}
	return g
}

// perturbWithModes adds the given signed combination of the variation
// modes to a signature, clamped to non-negative reflectance.
func perturbWithModes(sig []float32, modes [][]float64, g [3]float64) []float32 {
	out := make([]float32, len(sig))
	copy(out, sig)
	for k, m := range modes {
		for i := range out {
			out[i] += float32(g[k] * m[i])
		}
	}
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// plumeWeight returns the smoke abundance at (l,s): a band along the
// diagonal running from the debris zone's lower-left corner toward the
// scene's lower-left, fading with distance.
func plumeWeight(cfg Config, dz rect, l, s int) float64 {
	// Parameterize the plume axis from (dz.l1, dz.s0) toward
	// (cfg.Lines-1, 0).
	x0, y0 := float64(dz.l1), float64(dz.s0)
	x1, y1 := float64(cfg.Lines-1), 0.0
	dx, dy := x1-x0, y1-y0
	lenSq := dx*dx + dy*dy
	if lenSq == 0 {
		return 0
	}
	t := ((float64(l)-x0)*dx + (float64(s)-y0)*dy) / lenSq
	if t < 0 || t > 1 {
		return 0
	}
	// Perpendicular distance to the axis.
	px, py := x0+t*dx, y0+t*dy
	dist := math.Hypot(float64(l)-px, float64(s)-py)
	width := float64(cfg.Samples) / 12
	if dist > width {
		return 0
	}
	// Densest near the source, fading downstream and outward.
	return 0.55 * (1 - t) * (1 - dist/width)
}

// hotSpotAmplitude scales the planted thermal signal relative to typical
// reflectance so hot spots are the brightest pixels in the scene, with
// hotter spots brighter (the paper's 'F' at 700F is the faintest target).
func hotSpotAmplitude(tempF float64) float64 {
	return 0.9 + 2.6*(tempF-700)/600
}

// hotSpotMixFraction is the abundance of the thermal signature in each
// planted pixel. The partially submerged spots ('A', 'E' and especially
// the cool 'F') reproduce the paper's Table 3: their absolute
// least-squares error is small, so the error-driven UFCLS passes them
// over, while their distinct spectral direction keeps them visible to the
// orthogonal-projection ATDCA.
var hotSpotMixFraction = map[string]float64{
	"A": 0.50, "B": 0.85, "C": 0.80, "D": 0.85, "E": 0.62, "F": 0.55, "G": 0.90,
}

// plantHotSpots writes the seven targets into the cube, spread across the
// debris field on a fixed fractional lattice so they never collide.
func plantHotSpots(c *cube.Cube, dz rect, bands int) []HotSpot {
	// Fractional positions inside the debris zone, one per label.
	fracs := [][2]float64{
		{0.20, 0.25}, // A
		{0.20, 0.75}, // B
		{0.45, 0.15}, // C
		{0.45, 0.55}, // D
		{0.70, 0.30}, // E
		{0.70, 0.80}, // F
		{0.88, 0.50}, // G
	}
	spots := make([]HotSpot, len(HotSpotLabels))
	for i, label := range HotSpotLabels {
		temp := HotSpotTemperaturesF[label]
		l := dz.l0 + int(fracs[i][0]*float64(dz.lines()-1))
		s := dz.s0 + int(fracs[i][1]*float64(dz.samples()-1))
		sig := hotSpotSignature(bands, temp, i)
		under := c.Pixel(l, s)
		frac := hotSpotMixFraction[label]
		mixed := spectral.Mix([][]float32{sig, under}, []float64{frac, 1 - frac})
		c.SetPixel(l, s, mixed)
		spots[i] = HotSpot{Label: label, Line: l, Sample: s, TempF: temp, Signature: sig}
	}
	return spots
}

// hotSpotSignature builds the pure signature of the idx-th hot spot: the
// blackbody curve of its temperature plus an emission feature at a
// spot-specific wavelength. The distinct features model what the USGS
// analyses of the WTC fires found — each hot spot burned a different mix
// of materials — and are what lets an orthogonal-projection detector
// separate seven sources whose thermal continua alone span only a low-
// dimensional subspace.
func hotSpotSignature(bands int, temp float64, idx int) []float32 {
	amp := hotSpotAmplitude(temp)
	thermal := spectral.ThermalSignature(bands, temp, amp)
	// Distinct emission line per spot, placed in the gaps between the
	// plume variation mode lobes so the plume subspace never swallows a
	// target's identifying feature.
	centers := []float64{0.70, 0.98, 1.30, 1.45, 1.73, 2.10, 2.22}
	feature := spectral.Synthesize(bands, 0, 0, []spectral.Feature{
		{Center: centers[idx], Width: 0.07, Amplitude: 0.45 * amp},
	})
	return spectral.Mix([][]float32{thermal, feature}, []float64{1, 1})
}

// plantShadows scales a fraction of background pixels far below unit
// illumination. Shadow preserves spectral direction (so SAD and OSP see
// them as ordinary background) but breaks the sum-to-one constraint of
// the fully constrained mixture model.
func plantShadows(rng *rand.Rand, c *cube.Cube, truth *GroundTruth, fraction float64) []int {
	np := c.NumPixels()
	count := int(fraction * float64(np))
	shadows := make([]int, 0, count)
	for len(shadows) < count {
		p := rng.Intn(np)
		if truth.ClassMap[p] != -1 {
			continue // keep the debris field clean
		}
		v := c.PixelAt(p)
		// Wide depth spread: each darker shadow of a material violates
		// the sum-to-one constraint anew, even after shallower shadows
		// of the same material have been admitted as endmembers.
		scale := float32(0.06 + 0.4*rng.Float64())
		for b := range v {
			v[b] *= scale
		}
		shadows = append(shadows, p)
	}
	return shadows
}

// addNoise perturbs every sample with Gaussian noise at the given SNR,
// measured against the scene's mean signal power. The power sum folds
// per-chunk partials in ascending chunk order and each row draws its
// noise from a generator seeded by (seed, streamNoise, row), so the noisy
// scene is bit-identical at any par worker budget.
func addNoise(seed int64, c *cube.Cube, snrDB float64) {
	n := len(c.Data)
	power := par.ReduceOrdered(n, par.Chunks(n, 65536),
		func(_, lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				v := float64(c.Data[i])
				s += v * v
			}
			return s
		},
		func(acc, v float64) float64 { return acc + v })
	power /= float64(n)
	sigma := math.Sqrt(power / math.Pow(10, snrDB/10))
	rowLen := c.Samples * c.Bands
	par.Lines(c.Lines, 1, func(_, lo, hi int) {
		for l := lo; l < hi; l++ {
			rowRng := rand.New(rand.NewSource(derivedSeed(seed, streamNoise, uint64(l))))
			row := c.Data[l*rowLen : (l+1)*rowLen]
			for i := range row {
				row[i] += float32(sigma * rowRng.NormFloat64())
				if row[i] < 0 {
					row[i] = 0
				}
			}
		}
	})
}

// buildLibrary synthesizes the endmember library: background materials,
// smoke, generic dust, and the seven debris classes. The concretes,
// cements and dusts are deliberately similar (small feature shifts), as
// the USGS laboratory spectra are.
func buildLibrary(n int) *spectral.Library {
	lib := spectral.NewLibrary(n)
	add := func(name string, sig []float32) {
		if err := lib.Add(name, sig); err != nil {
			panic(err)
		}
	}
	add("vegetation", spectral.Synthesize(n, 0.05, 0.05, []spectral.Feature{
		{Center: 0.55, Width: 0.03, Amplitude: 0.05},  // green peak
		{Center: 0.68, Width: 0.02, Amplitude: -0.04}, // chlorophyll absorption
		{Center: 0.85, Width: 0.25, Amplitude: 0.45},  // NIR plateau
		{Center: 1.45, Width: 0.06, Amplitude: -0.12}, // water absorption
		{Center: 1.94, Width: 0.07, Amplitude: -0.15},
	}))
	add("asphalt", spectral.Synthesize(n, 0.08, 0.06, nil))
	add("water", spectral.Synthesize(n, 0.06, -0.055, []spectral.Feature{
		{Center: 0.45, Width: 0.08, Amplitude: 0.03},
	}))
	add("smoke", spectral.Synthesize(n, 0.35, -0.20, []spectral.Feature{
		{Center: 0.47, Width: 0.10, Amplitude: 0.25}, // bright blue scattering
	}))
	add("generic dust", spectral.Synthesize(n, 0.30, 0.10, []spectral.Feature{
		{Center: 2.20, Width: 0.06, Amplitude: -0.05},
	}))

	// Seven debris classes: a shared calcareous backbone with class-
	// specific feature positions and depths. Feature depths are sized so
	// the smallest inter-class angle (~0.1 rad) sits comfortably above
	// the pixel noise (~0.03 rad at 30 dB SNR) while the materials remain
	// genuinely similar, as the USGS laboratory spectra are.
	add(ClassNames[0], spectral.Synthesize(n, 0.32, 0.10, []spectral.Feature{
		{Center: 1.87, Width: 0.05, Amplitude: -0.18}, // carbonate
		{Center: 2.30, Width: 0.05, Amplitude: -0.14},
	}))
	add(ClassNames[1], spectral.Synthesize(n, 0.30, 0.18, []spectral.Feature{
		{Center: 1.87, Width: 0.05, Amplitude: -0.08},
		{Center: 2.33, Width: 0.05, Amplitude: -0.20},
		{Center: 0.95, Width: 0.10, Amplitude: 0.09},
	}))
	add(ClassNames[2], spectral.Synthesize(n, 0.36, 0.05, []spectral.Feature{
		{Center: 1.90, Width: 0.06, Amplitude: -0.22},
		{Center: 2.21, Width: 0.04, Amplitude: -0.10},
		{Center: 0.55, Width: 0.07, Amplitude: 0.06},
	}))
	add(ClassNames[3], spectral.Synthesize(n, 0.28, 0.20, []spectral.Feature{
		{Center: 1.41, Width: 0.05, Amplitude: -0.12},
		{Center: 2.25, Width: 0.06, Amplitude: -0.16},
	}))
	add(ClassNames[4], spectral.Synthesize(n, 0.27, 0.10, []spectral.Feature{
		{Center: 1.41, Width: 0.05, Amplitude: -0.17},
		{Center: 1.91, Width: 0.05, Amplitude: -0.09},
		{Center: 0.60, Width: 0.08, Amplitude: 0.08},
	}))
	add(ClassNames[5], spectral.Synthesize(n, 0.29, 0.16, []spectral.Feature{
		{Center: 1.44, Width: 0.06, Amplitude: -0.08},
		{Center: 2.34, Width: 0.05, Amplitude: -0.13},
		{Center: 1.00, Width: 0.12, Amplitude: -0.09},
	}))
	add(ClassNames[6], spectral.Synthesize(n, 0.42, 0.02, []spectral.Feature{ // gypsum
		{Center: 1.45, Width: 0.04, Amplitude: -0.22},
		{Center: 1.75, Width: 0.03, Amplitude: -0.10},
		{Center: 1.94, Width: 0.05, Amplitude: -0.24},
		{Center: 2.21, Width: 0.04, Amplitude: -0.08},
	}))
	return lib
}

// DebrisCrop returns the sub-scene covering the debris field — the region
// the USGS dust/debris map describes — as a deep-copied cube plus the
// matching ground-truth class map. Table 4's classification study runs on
// this crop (the paper's maps are likewise centred on the collapse zone),
// so the c=7 classes correspond to the seven debris materials rather than
// to the surrounding vegetation, water and smoke.
func (sc *Scene) DebrisCrop() (*cube.Cube, []int, error) {
	dz := debrisZone(sc.Config)
	crop := cube.MustNew(dz.lines(), dz.samples(), sc.Cube.Bands)
	truth := make([]int, crop.NumPixels())
	for l := 0; l < dz.lines(); l++ {
		for s := 0; s < dz.samples(); s++ {
			crop.SetPixel(l, s, sc.Cube.Pixel(dz.l0+l, dz.s0+s))
			truth[crop.FlatIndex(l, s)] = sc.Truth.ClassMap[sc.Cube.FlatIndex(dz.l0+l, dz.s0+s)]
		}
	}
	return crop, truth, nil
}

// WTCDefault returns the configuration used by the experiment drivers: a
// reduced-resolution analogue of the paper's 2133x512x224 scene sized so
// the full benchmark suite runs on one machine. The virtual-time model
// preserves the *shape* of the paper's timing tables at this scale.
func WTCDefault() Config {
	return Config{Lines: 144, Samples: 96, Bands: 64, Seed: 20010916}
}

// WTCFull returns the full-size geometry of the paper's AVIRIS scene
// (about 1 GB of samples); generating it is expensive and only needed
// for large-scale runs.
func WTCFull() Config {
	return Config{Lines: 2133, Samples: 512, Bands: 224, Seed: 20010916}
}
