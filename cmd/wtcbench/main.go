// Command wtcbench regenerates the evaluation of Plaza (CLUSTER 2006):
// every table (1-8) and Figure 2, printed in the paper's layout.
//
// Usage:
//
//	wtcbench [-table N] [-figure 2] [-all] [-seed N]
//
// With no selection flags, -all is assumed. Tables 1-2 are platform
// descriptions; Tables 3-4 run the accuracy studies on the synthetic WTC
// scene; Tables 5-7 run the 32-run network suite; Table 8 and Figure 2
// run the Thunderhead scalability study (the slowest part, around half a
// minute). All timings are virtual seconds from the platform cost model
// and deterministic for a given seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	hyperhet "repro"
)

func main() {
	var (
		tableN = flag.Int("table", 0, "print one table (1..8)")
		figure = flag.Int("figure", 0, "print one figure (2)")
		all    = flag.Bool("all", false, "print every table and figure")
		seed   = flag.Int64("seed", 0, "override the scene seed (0 keeps the default)")
		quiet  = flag.Bool("quiet", false, "suppress progress notes on stderr")
		asJSON = flag.Bool("json", false, "emit one JSON document with every computed result instead of text tables")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "wtcbench: unexpected argument %q (all options are flags)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *tableN < 0 || *tableN > 8 {
		fmt.Fprintf(os.Stderr, "wtcbench: -table must be 1..8, got %d\n", *tableN)
		os.Exit(2)
	}
	if *figure != 0 && *figure != 2 {
		fmt.Fprintf(os.Stderr, "wtcbench: -figure must be 2 (the paper's only figure), got %d\n", *figure)
		os.Exit(2)
	}
	if *tableN == 0 && *figure == 0 {
		*all = true
	}
	cfg := hyperhet.DefaultExperimentConfig()
	if *seed != 0 {
		cfg.AccuracyScene.Seed = *seed
		cfg.TimingScene.Seed = *seed
		cfg.ThunderheadScene.Seed = *seed
	}
	progress := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	want := func(n int) bool { return *all || *tableN == n }

	// results accumulates everything computed for -json output.
	results := map[string]any{}

	if want(1) && !*asJSON {
		fmt.Println(hyperhet.RenderTable1())
	}
	if want(2) && !*asJSON {
		fmt.Println(hyperhet.RenderTable2())
	}
	if want(3) {
		progress("running Table 3 (target detection accuracy)...")
		start := time.Now()
		r, err := hyperhet.Table3(cfg)
		exitOn(err)
		progress("  done in %v", time.Since(start).Round(time.Millisecond))
		results["table3"] = r
		if !*asJSON {
			fmt.Println(hyperhet.RenderTable3(r))
		}
	}
	if want(4) {
		progress("running Table 4 (classification accuracy)...")
		start := time.Now()
		r, err := hyperhet.Table4(cfg)
		exitOn(err)
		progress("  done in %v", time.Since(start).Round(time.Millisecond))
		results["table4"] = r
		if !*asJSON {
			fmt.Println(hyperhet.RenderTable4(r))
		}
	}
	if want(5) || want(6) || want(7) {
		progress("running the network suite (Tables 5-7, 32 runs)...")
		start := time.Now()
		suite, err := hyperhet.NetworkSuite(cfg)
		exitOn(err)
		progress("  done in %v", time.Since(start).Round(time.Millisecond))
		results["network_suite"] = suite
		if !*asJSON {
			if want(5) {
				fmt.Println(hyperhet.RenderTable5(suite))
			}
			if want(6) {
				fmt.Println(hyperhet.RenderTable6(suite))
			}
			if want(7) {
				fmt.Println(hyperhet.RenderTable7(suite))
			}
		}
	}
	if want(8) || *all || *figure == 2 {
		progress("running the Thunderhead study (Table 8, Figure 2, 36 runs)...")
		start := time.Now()
		th, err := hyperhet.ThunderheadStudy(cfg)
		exitOn(err)
		progress("  done in %v", time.Since(start).Round(time.Millisecond))
		results["thunderhead"] = th
		if !*asJSON {
			if want(8) {
				fmt.Println(hyperhet.RenderTable8(th))
			}
			if *all || *figure == 2 {
				fmt.Println(hyperhet.RenderFigure2(th))
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(results))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wtcbench:", err)
		os.Exit(1)
	}
}
