// Command hyperclass runs an unsupervised classifier (PCT or MORPH) on a
// hyperspectral cube file, optionally on a simulated parallel platform,
// and prints the class populations with the run's virtual-time
// performance figures. With a ground-truth sidecar (see cubegen) it also
// scores the classification.
//
// Usage:
//
//	hyperclass -in scene.hc [-algorithm pct|morph] [-classes N]
//	           [-net sequential|fully-het|fully-homo|part-het|part-homo|thunderhead]
//	           [-cpus N] [-variant hetero|homo] [-truth scene.hc.truth.json]
//
// The input may be the repository's single-file format or an ENVI .hdr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	hyperhet "repro"
)

func main() {
	var (
		in      = flag.String("in", "", "input cube file (required)")
		algName = flag.String("algorithm", "morph", "pct or morph")
		classes = flag.Int("classes", 7, "number of classes c")
		netName = flag.String("net", "sequential", "platform: sequential, fully-het, fully-homo, part-het, part-homo, thunderhead")
		cpus    = flag.Int("cpus", 16, "node count for -net thunderhead")
		variant = flag.String("variant", "hetero", "partitioning: hetero (WEA) or homo (equal shares)")
		truthIn = flag.String("truth", "", "ground-truth sidecar JSON for accuracy scoring")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hyperclass: unexpected argument %q (all options are flags)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hyperclass: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	// Validate every flag before touching the (possibly large) input.
	var alg hyperhet.Algorithm
	switch strings.ToLower(*algName) {
	case "pct":
		alg = hyperhet.PCT
	case "morph":
		alg = hyperhet.MORPH
	default:
		exitOn(fmt.Errorf("unknown algorithm %q (want pct or morph)", *algName))
	}
	if *classes <= 0 {
		exitOn(fmt.Errorf("-classes must be positive, got %d", *classes))
	}
	if *cpus < 1 {
		exitOn(fmt.Errorf("-cpus must be at least 1, got %d", *cpus))
	}
	v, err := parseVariant(*variant)
	exitOn(err)
	var net *hyperhet.Network
	if !strings.EqualFold(*netName, "sequential") {
		net, err = parseNet(*netName, *cpus)
		exitOn(err)
	}

	f, err := loadCube(*in)
	exitOn(err)

	params := hyperhet.DefaultParams()
	params.PCT.Classes = *classes
	params.Morph.Classes = *classes

	var rep *hyperhet.RunReport
	if net == nil {
		rep, err = hyperhet.RunSequential(0.0072, alg, f, params)
	} else {
		rep, err = hyperhet.Run(net, alg, v, f, params)
	}
	exitOn(err)

	fmt.Printf("%s/%s on %s (%d processors)\n", rep.Algorithm, rep.Variant, rep.Network, rep.Procs)
	fmt.Printf("virtual time %.2f s (COM %.2f, SEQ %.2f, PAR %.2f)\n",
		rep.WallTime, rep.Com, rep.Seq, rep.Par)
	counts := make([]int, len(rep.Classification.Classes))
	for _, lab := range rep.Classification.Labels {
		counts[lab]++
	}
	fmt.Printf("%d classes:\n", len(counts))
	for k, n := range counts {
		fmt.Printf("  class %d: %d pixels (%.1f%%)\n", k, n,
			100*float64(n)/float64(len(rep.Classification.Labels)))
	}

	if *truthIn != "" {
		blob, err := os.ReadFile(*truthIn)
		exitOn(err)
		var truth struct {
			ClassNames []string
			ClassMap   []int
		}
		exitOn(json.Unmarshal(blob, &truth))
		acc, err := hyperhet.ClassificationAccuracy(truth.ClassMap, len(truth.ClassNames), rep.Classification.Labels)
		exitOn(err)
		fmt.Printf("accuracy vs ground truth: %.2f%% overall\n", 100*acc.Overall)
		for k, v := range acc.PerClass {
			name := fmt.Sprintf("class %d", k)
			if k < len(truth.ClassNames) {
				name = truth.ClassNames[k]
			}
			fmt.Printf("  %-26s %.2f%%\n", name, 100*v)
		}
	}
}

func parseVariant(s string) (hyperhet.Variant, error) {
	switch strings.ToLower(s) {
	case "hetero":
		return hyperhet.Hetero, nil
	case "homo":
		return hyperhet.Homo, nil
	}
	return "", fmt.Errorf("unknown variant %q (want hetero or homo)", s)
}

func parseNet(s string, cpus int) (*hyperhet.Network, error) {
	switch strings.ToLower(s) {
	case "fully-het":
		return hyperhet.FullyHeterogeneous(), nil
	case "fully-homo":
		return hyperhet.FullyHomogeneous(), nil
	case "part-het":
		return hyperhet.PartiallyHeterogeneous(), nil
	case "part-homo":
		return hyperhet.PartiallyHomogeneous(), nil
	case "thunderhead":
		return hyperhet.Thunderhead(cpus)
	}
	return nil, fmt.Errorf("unknown platform %q", s)
}

// loadCube reads either the repository's single-file format or an ENVI
// header/data pair (by .hdr suffix).
func loadCube(path string) (*hyperhet.Cube, error) {
	if strings.HasSuffix(strings.ToLower(path), ".hdr") {
		c, _, err := hyperhet.LoadENVI(path)
		return c, err
	}
	return hyperhet.LoadCube(path)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperclass:", err)
		os.Exit(1)
	}
}
