// Command benchjson converts `go test -bench` text output into a stable
// JSON document, suitable for committing as a benchmark baseline
// (BENCH_0.json at the repository root) and for machine diffing in CI:
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x ./... | go run ./cmd/benchjson > BENCH_0.json
//
// Every benchmark line becomes one record carrying the benchmark name
// (with the -GOMAXPROCS suffix split off), the iteration count and a map
// of every reported metric — the standard ns/op, B/op and allocs/op as
// well as the custom b.ReportMetric units this repo emits (vsec,
// vsec_com, D_all, speedup, jobs/sec, ...). Output records are sorted by
// package and name so the JSON is diff-friendly regardless of benchmark
// scheduling order.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchmark is one parsed benchmark result line.
type benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -N GOMAXPROCS suffix (kept separately in Procs).
	Name string `json:"name"`
	// Pkg is the import path the benchmark ran in.
	Pkg string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS suffix of the name (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit name to value: "ns/op", "B/op", "allocs/op" and
	// any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// document is the full converted output.
type document struct {
	// Goos, Goarch and CPU are taken from the go test header lines.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks are sorted by (pkg, name, procs).
	Benchmarks []benchmark `json:"benchmarks"`
}

// parse reads `go test -bench` output and collects header fields and
// benchmark lines. Unrecognized lines (PASS, ok, test logs) are skipped.
func parse(r io.Reader) (*document, error) {
	doc := &document{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w", err)
			}
			if ok {
				b.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		a, b := doc.Benchmarks[i], doc.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Procs < b.Procs
	})
	return doc, nil
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   4   123456 ns/op   12 vsec   64 B/op   2 allocs/op
//
// ok is false for lines that merely start a benchmark (name only, no
// fields) — go test prints those while a benchmark is running.
func parseLine(line string) (benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return benchmark{}, false, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value, unit.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return benchmark{}, false, fmt.Errorf("odd metric fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return benchmark{}, false, fmt.Errorf("bad metric value %q in %q: %w", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true, nil
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
