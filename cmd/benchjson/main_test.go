package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Imaginary CPU @ 2.40GHz
BenchmarkTable3_ATDCA-8   	       2	 512345678 ns/op	        81.50 vsec	 1024 B/op	      12 allocs/op
BenchmarkTable5/atdca/fully-het-8         	       1	 734000000 ns/op	         0.4100 D_all	        84.00 vsec	         9.100 vsec_com
BenchmarkKernelSAD    	 1000000	      1042 ns/op
PASS
ok  	repro	12.345s
pkg: repro/internal/sched
BenchmarkSchedulerThroughput-8	      64	  15624999 ns/op	        64.00 jobs/sec
PASS
ok  	repro/internal/sched	1.234s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("header: goos=%q goarch=%q", doc.Goos, doc.Goarch)
	}
	if doc.CPU != "Imaginary CPU @ 2.40GHz" {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(doc.Benchmarks))
	}
	// Sorted by (pkg, name): repro/* before repro/internal/sched/*.
	byName := map[string]benchmark{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}

	at, ok := byName["Table3_ATDCA"]
	if !ok {
		t.Fatalf("Table3_ATDCA missing; have %v", doc.Benchmarks)
	}
	if at.Procs != 8 || at.Iterations != 2 || at.Pkg != "repro" {
		t.Errorf("Table3_ATDCA parsed as %+v", at)
	}
	if at.Metrics["vsec"] != 81.5 || at.Metrics["allocs/op"] != 12 {
		t.Errorf("Table3_ATDCA metrics: %v", at.Metrics)
	}

	// Sub-benchmark names keep their slashes; custom metrics survive.
	t5 := byName["Table5/atdca/fully-het"]
	if t5.Metrics["D_all"] != 0.41 || t5.Metrics["vsec_com"] != 9.1 {
		t.Errorf("Table5 metrics: %v", t5.Metrics)
	}

	// A name without -N suffix parses with Procs 0.
	sad := byName["KernelSAD"]
	if sad.Procs != 0 || sad.Iterations != 1000000 || sad.Metrics["ns/op"] != 1042 {
		t.Errorf("KernelSAD parsed as %+v", sad)
	}

	// The pkg header resets between packages.
	sched := byName["SchedulerThroughput"]
	if sched.Pkg != "repro/internal/sched" {
		t.Errorf("SchedulerThroughput pkg = %q", sched.Pkg)
	}
}

func TestParseSortsDeterministically(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(doc.Benchmarks); i++ {
		a, b := doc.Benchmarks[i-1], doc.Benchmarks[i]
		if a.Pkg > b.Pkg || (a.Pkg == b.Pkg && a.Name > b.Name) {
			t.Errorf("benchmarks out of order: %s/%s before %s/%s", a.Pkg, a.Name, b.Pkg, b.Name)
		}
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8 notanumber 12 ns/op",
		"BenchmarkX-8 2 twelve ns/op",
		"BenchmarkX-8 2 12 ns/op dangling",
	} {
		if _, err := parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("parse(%q) accepted malformed input", bad)
		}
	}
	// A bare in-progress line (name only) is skipped, not an error.
	doc, err := parse(strings.NewReader("BenchmarkX-8\nBenchmarkY-8   2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("in-progress lines should be skipped, got %v", doc.Benchmarks)
	}
}
