// Command simsoak drives the internal/sim deterministic simulation
// harness over a range of seeds — the long-running companion to the
// bounded TestSim sweep. Every seed expands into a randomized workload
// of jobs and pipelines with injected faults, crashes and journal
// tears; the harness checks stack-wide invariants and, on the first
// failure, minimizes the scenario and prints a one-line repro before
// exiting nonzero.
//
// Usage:
//
//	simsoak -seeds 500            # seeds 1..500
//	simsoak -start 12000 -seeds 100
//	simsoak -seed 282             # one seed, verbose verdict
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
)

func main() {
	var (
		seeds   = flag.Int("seeds", 100, "number of consecutive seeds to run")
		start   = flag.Uint64("start", 1, "first seed")
		oneSeed = flag.Int64("seed", -1, "run exactly this seed and print its verdict")
		budget  = flag.Int("shrink-budget", 60, "max harness runs the shrinking pass may spend")
		timeout = flag.Duration("timeout", 0, "per-phase settle guard (default 60s)")
		verbose = flag.Bool("v", false, "print every seed's verdict line")
	)
	flag.Parse()

	scenes := sim.NewSceneCache()
	opts := sim.CheckOptions{Scenes: scenes, Timeout: *timeout}

	if *oneSeed >= 0 {
		v, err := sim.Check(sim.FromSeed(uint64(*oneSeed)), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simsoak: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(v.String())
		if !v.OK() {
			os.Exit(1)
		}
		return
	}

	began := time.Now()
	for i := 0; i < *seeds; i++ {
		seed := *start + uint64(i)
		v, err := sim.Check(sim.FromSeed(seed), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simsoak: seed %d: %v\n", seed, err)
			os.Exit(2)
		}
		if v.OK() {
			if *verbose {
				fmt.Printf("seed %d: ok\n", seed)
			} else if (i+1)%50 == 0 {
				fmt.Printf("simsoak: %d/%d seeds ok (%.1fs)\n", i+1, *seeds, time.Since(began).Seconds())
			}
			continue
		}
		fmt.Printf("seed %d: FAILED — shrinking...\n", seed)
		res, err := sim.Minimize(sim.FromSeed(seed), opts, *budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simsoak: shrink: %v\n%s", err, v.String())
			os.Exit(1)
		}
		fmt.Print(res.Report())
		os.Exit(1)
	}
	fmt.Printf("simsoak: %d seeds ok in %.1fs\n", *seeds, time.Since(began).Seconds())
}
