// Command hyperdetect runs a target detection algorithm (ATDCA or UFCLS)
// on a hyperspectral cube file, optionally on a simulated parallel
// platform, and prints the detected targets with the run's virtual-time
// performance figures.
//
// Usage:
//
//	hyperdetect -in scene.hc [-algorithm atdca|ufcls] [-targets N]
//	            [-net sequential|fully-het|fully-homo|part-het|part-homo|thunderhead]
//	            [-cpus N] [-variant hetero|homo] [-trace]
//
// The input may be the repository's single-file format or an ENVI .hdr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	hyperhet "repro"
)

func main() {
	var (
		in      = flag.String("in", "", "input cube file (required)")
		algName = flag.String("algorithm", "atdca", "atdca or ufcls")
		targets = flag.Int("targets", 18, "number of targets t")
		netName = flag.String("net", "sequential", "platform: sequential, fully-het, fully-homo, part-het, part-homo, thunderhead")
		cpus    = flag.Int("cpus", 16, "node count for -net thunderhead")
		variant = flag.String("variant", "hetero", "partitioning: hetero (WEA) or homo (equal shares)")
		trace   = flag.Bool("trace", false, "print a per-processor activity timeline of the run")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hyperdetect: unexpected argument %q (all options are flags)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hyperdetect: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	// Validate every flag before touching the (possibly large) input.
	var alg hyperhet.Algorithm
	switch strings.ToLower(*algName) {
	case "atdca":
		alg = hyperhet.ATDCA
	case "ufcls":
		alg = hyperhet.UFCLS
	default:
		exitOn(fmt.Errorf("unknown algorithm %q (want atdca or ufcls)", *algName))
	}
	v, err := parseVariant(*variant)
	exitOn(err)
	if *targets <= 0 {
		exitOn(fmt.Errorf("-targets must be positive, got %d", *targets))
	}
	if *cpus < 1 {
		exitOn(fmt.Errorf("-cpus must be at least 1, got %d", *cpus))
	}
	var net *hyperhet.Network
	if !strings.EqualFold(*netName, "sequential") {
		net, err = parseNet(*netName, *cpus)
		exitOn(err)
	}

	f, err := loadCube(*in)
	exitOn(err)

	params := hyperhet.DefaultParams()
	params.Targets = *targets
	params.Trace = *trace

	var rep *hyperhet.RunReport
	if net == nil {
		rep, err = hyperhet.RunSequential(0.0072, alg, f, params)
	} else {
		rep, err = hyperhet.Run(net, alg, v, f, params)
	}
	exitOn(err)

	fmt.Printf("%s/%s on %s (%d processors)\n", rep.Algorithm, rep.Variant, rep.Network, rep.Procs)
	fmt.Printf("virtual time %.2f s (COM %.2f, SEQ %.2f, PAR %.2f), imbalance D_all=%.2f D_minus=%.2f\n",
		rep.WallTime, rep.Com, rep.Seq, rep.Par, rep.DAll, rep.DMinus)
	if rep.Timeline != "" {
		fmt.Println(rep.Timeline)
	}
	fmt.Printf("%-4s %-6s %-7s %s\n", "#", "line", "sample", "score")
	for i, tg := range rep.Detection.Targets {
		fmt.Printf("%-4d %-6d %-7d %.5f\n", i+1, tg.Line, tg.Sample, tg.Score)
	}
}

func parseVariant(s string) (hyperhet.Variant, error) {
	switch strings.ToLower(s) {
	case "hetero":
		return hyperhet.Hetero, nil
	case "homo":
		return hyperhet.Homo, nil
	}
	return "", fmt.Errorf("unknown variant %q (want hetero or homo)", s)
}

func parseNet(s string, cpus int) (*hyperhet.Network, error) {
	switch strings.ToLower(s) {
	case "fully-het":
		return hyperhet.FullyHeterogeneous(), nil
	case "fully-homo":
		return hyperhet.FullyHomogeneous(), nil
	case "part-het":
		return hyperhet.PartiallyHeterogeneous(), nil
	case "part-homo":
		return hyperhet.PartiallyHomogeneous(), nil
	case "thunderhead":
		return hyperhet.Thunderhead(cpus)
	}
	return nil, fmt.Errorf("unknown platform %q", s)
}

// loadCube reads either the repository's single-file format or an ENVI
// header/data pair (by .hdr suffix).
func loadCube(path string) (*hyperhet.Cube, error) {
	if strings.HasSuffix(strings.ToLower(path), ".hdr") {
		c, _, err := hyperhet.LoadENVI(path)
		return c, err
	}
	return hyperhet.LoadCube(path)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperdetect:", err)
		os.Exit(1)
	}
}
