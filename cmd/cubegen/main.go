// Command cubegen generates a synthetic AVIRIS-like World Trade Center
// scene and writes it to disk in the repository's simplified ENVI-style
// format, together with a ground-truth sidecar (JSON) holding the planted
// hot spots and the debris class map.
//
// Usage:
//
//	cubegen -o scene.hc [-lines N] [-samples N] [-bands N] [-seed N] [-snr dB]
//	        [-format hc|envi] [-interleave bip|bil|bsq] [-quicklook fig1.ppm]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	hyperhet "repro"
)

// truthSidecar is the JSON document written next to the cube.
type truthSidecar struct {
	Lines, Samples, Bands int
	Seed                  int64
	HotSpots              []hotSpotJSON
	ClassNames            []string
	// ClassMap is the per-pixel debris class (-1 background), row-major.
	ClassMap []int
}

type hotSpotJSON struct {
	Label        string
	Line, Sample int
	TempF        float64
}

func main() {
	var (
		out     = flag.String("o", "scene.hc", "output cube path (+ .truth.json sidecar)")
		lines   = flag.Int("lines", 144, "spatial rows")
		samples = flag.Int("samples", 96, "spatial columns")
		bands   = flag.Int("bands", 64, "spectral bands")
		seed    = flag.Int64("seed", 20010916, "generator seed")
		snr     = flag.Float64("snr", 0, "per-band SNR in dB (0 = default)")
		format  = flag.String("format", "hc", "output format: hc (single file) or envi (hdr+img pair)")
		il      = flag.String("interleave", "bip", "ENVI interleave: bip, bil or bsq")
		look    = flag.String("quicklook", "", "also write a Figure-1-style false-color PPM to this path")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cubegen: unexpected argument %q (all options are flags)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	// Validate every flag before the (potentially slow) scene generation.
	if *out == "" {
		exitOn(fmt.Errorf("-o must not be empty"))
	}
	if *lines <= 0 || *samples <= 0 || *bands <= 0 {
		exitOn(fmt.Errorf("scene dimensions must be positive, got %dx%dx%d", *lines, *samples, *bands))
	}
	if *snr < 0 {
		exitOn(fmt.Errorf("-snr must be non-negative dB, got %g", *snr))
	}
	switch *format {
	case "hc", "envi":
	default:
		exitOn(fmt.Errorf("unknown format %q (want hc or envi)", *format))
	}
	switch *il {
	case "bip", "bil", "bsq":
	default:
		exitOn(fmt.Errorf("unknown interleave %q (want bip, bil or bsq)", *il))
	}

	cfg := hyperhet.SceneConfig{
		Lines: *lines, Samples: *samples, Bands: *bands,
		Seed: *seed, SNRdB: *snr,
	}
	sc, err := hyperhet.GenerateScene(cfg)
	exitOn(err)
	switch *format {
	case "hc":
		exitOn(sc.Cube.Save(*out))
	case "envi":
		base := strings.TrimSuffix(*out, ".hc")
		exitOn(hyperhet.SaveENVI(sc.Cube, base, hyperhet.Interleave(*il)))
		fmt.Printf("wrote %s.hdr + %s.img (%s)\n", base, base, *il)
	}

	truth := truthSidecar{
		Lines: *lines, Samples: *samples, Bands: *bands, Seed: *seed,
		ClassNames: append([]string(nil), hyperhet.ClassNames...),
		ClassMap:   sc.Truth.ClassMap,
	}
	for _, h := range sc.Truth.HotSpots {
		truth.HotSpots = append(truth.HotSpots, hotSpotJSON{
			Label: h.Label, Line: h.Line, Sample: h.Sample, TempF: h.TempF,
		})
	}
	if *look != "" {
		exitOn(hyperhet.SaveQuicklook(*look, sc.Cube))
		fmt.Printf("wrote %s (false-color quicklook)\n", *look)
	}

	blob, err := json.MarshalIndent(truth, "", "  ")
	exitOn(err)
	exitOn(os.WriteFile(*out+".truth.json", blob, 0o644))

	stats := sc.Cube.ComputeStats()
	fmt.Printf("wrote %s: %dx%dx%d (%.1f MB), reflectance %.3f..%.3f\n",
		*out, *lines, *samples, *bands,
		float64(sc.Cube.SizeBytes())/(1<<20), stats.Min, stats.Max)
	fmt.Printf("wrote %s.truth.json: %d hot spots, %d debris classes\n",
		*out, len(truth.HotSpots), len(truth.ClassNames))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cubegen:", err)
		os.Exit(1)
	}
}
