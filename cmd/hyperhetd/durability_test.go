package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	hyperhet "repro"
)

// longCheckpointedJob runs for roughly a second of real time, so a test
// can reliably catch it mid-flight even on a single-CPU machine.
const longCheckpointedJob = `{
	"algorithm": "atdca", "mode": "run", "network": "fully-het",
	"targets": 10, "checkpoint": true,
	"scene": {"lines": 256, "samples": 128, "bands": 48, "seed": 3}
}`

func TestReadyzAndJobsListing(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})

	resp, doc := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || doc["status"] != "ok" {
		t.Fatalf("readyz = %d %v, want 200 ok", resp.StatusCode, doc)
	}

	var ids []string
	for i := 0; i < 3; i++ {
		// Distinct labels keep the jobs out of each other's cache slots
		// without disabling caching.
		body := fmt.Sprintf(`{"algorithm": "atdca", "mode": "sequential", "targets": 4,
			"label": "list-%d", "no_cache": true,
			"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3}}`, i)
		resp, doc := postJSON(t, ts.URL+"/submit", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d %v", i, resp.StatusCode, doc)
		}
		id, _ := doc["id"].(string)
		ids = append(ids, id)
		waitSettled(t, ts.URL, id)
	}

	resp, doc = getJSON(t, ts.URL+"/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs listing = %d", resp.StatusCode)
	}
	jobs, _ := doc["jobs"].([]any)
	if len(jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3: %v", len(jobs), doc)
	}
	for i, raw := range jobs {
		j, _ := raw.(map[string]any)
		if j["id"] != ids[i] {
			t.Fatalf("listing order: got %v at %d, want %s", j["id"], i, ids[i])
		}
	}

	resp, doc = getJSON(t, ts.URL+"/jobs?state=completed&limit=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered listing = %d", resp.StatusCode)
	}
	if jobs, _ := doc["jobs"].([]any); len(jobs) != 2 {
		t.Fatalf("limit=2 listed %d jobs: %v", len(jobs), doc)
	}

	resp, doc = getJSON(t, ts.URL+"/jobs?state=queued")
	if jobs, _ := doc["jobs"].([]any); resp.StatusCode != http.StatusOK || len(jobs) != 0 {
		t.Fatalf("queued listing = %d %v, want empty", resp.StatusCode, doc)
	}

	resp, _ = getJSON(t, ts.URL+"/jobs?state=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus state filter = %d, want 400", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/jobs?limit=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", resp.StatusCode)
	}
}

// A checkpointed fault job whose rank dies mid-run resumes its retry from
// a completed round, and the job document says so.
func TestCheckpointResumeOverHTTP(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{Workers: 1})

	// Calibrate: a clean checkpointed run of the same spec gives the
	// virtual timeline, so the crash can be pinned to its middle.
	resp, doc := postJSON(t, ts.URL+"/submit", `{
		"algorithm": "atdca", "mode": "run", "network": "fully-het",
		"targets": 6, "checkpoint": true,
		"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("calibration submit = %d %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	clean := waitSettled(t, ts.URL, id)
	if clean["state"] != "completed" {
		t.Fatalf("calibration job settled as %v (%v)", clean["state"], clean["error"])
	}
	result, _ := clean["result"].(map[string]any)
	vs, _ := result["virtual_seconds"].(float64)
	if vs <= 0 {
		t.Fatalf("calibration run reports no virtual time: %v", result)
	}
	if saves, _ := result["checkpoint_saves"].(float64); saves <= 0 {
		t.Fatalf("checkpointed run saved no snapshots: %v", result)
	}

	resp, doc = postJSON(t, ts.URL+"/submit", fmt.Sprintf(`{
		"algorithm": "atdca", "mode": "run", "network": "fully-het",
		"targets": 6, "checkpoint": true,
		"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3},
		"faults": {"crashes": [{"rank": 2, "at": %.9f, "attempt": 1}], "max_attempts": 3}}`, vs/2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fault submit = %d %v", resp.StatusCode, doc)
	}
	id, _ = doc["id"].(string)
	job := waitSettled(t, ts.URL, id)
	if job["state"] != "completed" {
		t.Fatalf("fault job settled as %v (%v)", job["state"], job["error"])
	}
	if att, _ := job["attempts"].(float64); att != 2 {
		t.Fatalf("attempts = %v, want 2", job["attempts"])
	}
	result, _ = job["result"].(map[string]any)
	if rfr, _ := result["resumed_from_round"].(float64); rfr < 1 {
		t.Fatalf("resumed_from_round = %v, want >= 1 (result %v)", result["resumed_from_round"], result)
	}
}

// The full restart story: a journaled server completes one job, drains
// with another mid-run, and its successor restores the finished job (with
// its cached result) while resuming the interrupted one under its
// original ID.
func TestJournalRestartResumesJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := hyperhet.SchedulerConfig{Workers: 1, QueueDepth: 16}

	srv1, err := newServer(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.routes())

	resp, doc := postJSON(t, ts1.URL+"/submit", tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %v", resp.StatusCode, doc)
	}
	finishedID, _ := doc["id"].(string)
	if st := waitSettled(t, ts1.URL, finishedID); st["state"] != "completed" {
		t.Fatalf("first job settled as %v", st["state"])
	}

	resp, doc = postJSON(t, ts1.URL+"/submit", longCheckpointedJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("long submit = %d %v", resp.StatusCode, doc)
	}
	longID, _ := doc["id"].(string)
	// Poll the scheduler handle in-process: on a loaded single-CPU box,
	// HTTP round trips can be starved past the whole running window.
	lj, err := srv1.sched.Job(longID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for lj.State() != hyperhet.JobRunning {
		if s := lj.State(); s.Final() {
			t.Fatalf("long job settled as %s before the drain could catch it", s)
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job never started running (state %s)", lj.State())
		}
		time.Sleep(time.Millisecond)
	}

	// Drain: the long job is cancelled without a terminal journal record,
	// and while draining the API refuses new work but keeps answering
	// status and health queries.
	drained := make(chan struct{})
	go func() { srv1.drain(10 * time.Second); close(drained) }()
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("drain did not finish within its deadline")
	}
	resp, _ = getJSON(t, ts1.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts1.URL+"/submit", tinyJob)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("drain 503 carries no Retry-After header")
	}
	resp, _ = getJSON(t, ts1.URL+"/jobs/"+longID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status while drained = %d, want 200", resp.StatusCode)
	}
	ts1.Close()

	// Second boot over the same journal.
	srv2, err := newServer(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.routes())
	defer func() {
		ts2.Close()
		srv2.close()
	}()

	// The finished job is queryable history again, result included.
	resp, doc = getJSON(t, ts2.URL+"/jobs/"+finishedID)
	if resp.StatusCode != http.StatusOK || doc["state"] != "completed" {
		t.Fatalf("restored job = %d %v", resp.StatusCode, doc)
	}
	if _, ok := doc["result"].(map[string]any); !ok {
		t.Fatalf("restored job lost its result: %v", doc)
	}

	// Its journaled result re-seeded the cache: an identical resubmission
	// completes from cache without recomputing.
	resp, doc = postJSON(t, ts2.URL+"/submit", tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit = %d %v", resp.StatusCode, doc)
	}
	rerunID, _ := doc["id"].(string)
	if rerunID == finishedID || rerunID == longID {
		t.Fatalf("fresh submission reused a recovered id: %s", rerunID)
	}
	rerun := waitSettled(t, ts2.URL, rerunID)
	if rerun["state"] != "completed" || rerun["from_cache"] != true {
		t.Fatalf("resubmission = state %v from_cache %v, want completed from cache",
			rerun["state"], rerun["from_cache"])
	}

	// The interrupted job came back under its original ID and runs to
	// completion.
	long := waitSettled(t, ts2.URL, longID)
	if long["state"] != "completed" {
		t.Fatalf("resumed job settled as %v (%v)", long["state"], long["error"])
	}
	result, _ := long["result"].(map[string]any)
	if tg, _ := result["targets"].(float64); int(tg) != 10 {
		t.Fatalf("resumed run found %v targets, want 10", result["targets"])
	}
}
