package main

import (
	"net/http"
	"strconv"
	"testing"
	"time"

	hyperhet "repro"
)

// faultJob is a run-mode submission whose injected crash exhausts its
// single attempt: it settles failed with a rank-death error, which is
// exactly what feeds the backend circuit breaker.
const faultJob = `{
	"algorithm": "atdca", "mode": "run", "network": "fully-het", "targets": 4,
	"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3},
	"faults": {"crashes": [{"rank": 2, "at": 0.0001, "attempt": 1}], "max_attempts": 1}
}`

// retryAfterSeconds parses the Retry-After header, failing the test when
// it is absent or not a positive integer-second count.
func retryAfterSeconds(t *testing.T, resp *http.Response) int {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("%d response carries no Retry-After header", resp.StatusCode)
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer-second count", ra)
	}
	return secs
}

// A guard-rate-limited server sheds the second submission with 429 and a
// Retry-After header, independent of how fast the first job finishes:
// the batch bucket holds exactly one token and refills at a crawl.
func TestSubmitShed429RetryAfter(t *testing.T) {
	const pinned = 1024
	ts := testServer(t, hyperhet.SchedulerConfig{
		Guard: hyperhet.NewGuard(hyperhet.GuardConfig{
			Limiter: hyperhet.GuardLimiterConfig{Initial: pinned, Min: pinned, Max: pinned},
			Buckets: []hyperhet.GuardBucketConfig{
				{Capacity: 1, Rate: 0.001},
				{Capacity: 1, Rate: 0.001},
			},
			DisableBreaker: true,
		}),
	})

	resp, doc := postJSON(t, ts.URL+"/submit", tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d %v, want 202", resp.StatusCode, doc)
	}
	resp, doc = postJSON(t, ts.URL+"/submit", tinyJob)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d %v, want 429", resp.StatusCode, doc)
	}
	retryAfterSeconds(t, resp)

	// The shed shows up in /stats and the guard block is present.
	_, stats := getJSON(t, ts.URL+"/stats")
	if shed, _ := stats["shed"].(float64); shed != 1 {
		t.Fatalf("stats shed = %v, want 1", stats["shed"])
	}
	if _, ok := stats["guard"].(map[string]any); !ok {
		t.Fatalf("stats carries no guard block: %v", stats)
	}
}

// A tripped backend circuit breaker turns identical submissions into
// 503s with Retry-After, flips /readyz to "breaker-open", and surfaces
// in the /stats guard block. A clean job on a different backend profile
// is admitted throughout.
func TestSubmitBreakerOpen503(t *testing.T) {
	const pinned = 1024
	ts := testServer(t, hyperhet.SchedulerConfig{
		Guard: hyperhet.NewGuard(hyperhet.GuardConfig{
			Limiter: hyperhet.GuardLimiterConfig{Initial: pinned, Min: pinned, Max: pinned},
			Breaker: hyperhet.GuardBreakerConfig{Threshold: 1, Cooldown: time.Minute},
		}),
	})

	resp, doc := postJSON(t, ts.URL+"/submit", faultJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fault submit = %d %v, want 202", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	job := waitSettled(t, ts.URL, id)
	if job["state"] != "failed" {
		t.Fatalf("fault job settled as %v, want failed", job["state"])
	}

	resp, doc = postJSON(t, ts.URL+"/submit", faultJob)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit against tripped backend = %d %v, want 503", resp.StatusCode, doc)
	}
	retryAfterSeconds(t, resp)

	// Readiness reports the breaker distinctly from draining.
	resp, doc = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || doc["status"] != "breaker-open" {
		t.Fatalf("readyz = %d %v, want 503 breaker-open", resp.StatusCode, doc)
	}

	// The guard block names the open breaker.
	_, stats := getJSON(t, ts.URL+"/stats")
	guard, ok := stats["guard"].(map[string]any)
	if !ok {
		t.Fatalf("stats carries no guard block: %v", stats)
	}
	if open, _ := guard["breakers_open"].(float64); open != 1 {
		t.Fatalf("guard breakers_open = %v, want 1", guard["breakers_open"])
	}
	if rejects, _ := stats["breaker_rejects"].(float64); rejects != 1 {
		t.Fatalf("stats breaker_rejects = %v, want 1", stats["breaker_rejects"])
	}

	// A clean sequential job has no backend at all, so no breaker ever
	// applies to it: admitted.
	resp, doc = postJSON(t, ts.URL+"/submit", tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("clean submit while sibling breaker open = %d %v, want 202", resp.StatusCode, doc)
	}
}
