package main

import (
	"encoding/json"
	"strings"
	"testing"

	hyperhet "repro"
)

// FuzzSubmitJSON drives the /submit decode-and-parse path with arbitrary
// bodies. The invariant under fuzz: malformed input yields an error (the
// handler's 400), never a panic, and never a JobSpec that passes parsing
// with an unbounded scene. Scene materialization is deliberately outside
// the fuzzed path — parseSubmit is pure — so the fuzzer can run millions
// of executions without allocating cubes.
func FuzzSubmitJSON(f *testing.F) {
	seeds := []string{
		tinyJob,
		tracedJob,
		`{}`,
		`{"algorithm": "ufcls", "variant": "homo", "network": "part-het", "priority": "interactive"}`,
		`{"algorithm": "pct", "classes": 5, "scaled": true, "scene": {"lines": 32, "samples": 32, "bands": 16}}`,
		`{"algorithm": "morph", "mode": "run", "network": "thunderhead", "cpus": 4}`,
		`{"mode": "adaptive", "network": "fully-homo", "timeout_ms": 5000}`,
		`{"algorithm": "atdca", "faults": {"crashes": [{"rank": 2, "at": 0.5}], "max_attempts": 3, "recovery": true}}`,
		`{"algorithm": "atdca", "faults": {"seed": 7}}`,
		// Malformed shapes the decoder or parser must reject cleanly.
		`{"algorithm": "atdca", "mode": "sequential", "cycle_time": -1}`,
		`{"algorithm": "nope"}`,
		`{"priority": "urgent"}`,
		`{"timeout_ms": -5}`,
		`{"targets": -1}`,
		`{"scene": {"lines": -3}}`,
		`{"scene": {"lines": 2147483647, "samples": 2147483647, "bands": 2147483647}}`,
		`{"faults": {"seed": 1, "crashes": [{"rank": 0, "at": 1}]}}`,
		`{"unknown_field": true}`,
		`{"algorithm": ["not", "a", "string"]}`,
		`not json at all`,
		`{"scene": {"snr_db": 1e308}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var req submitRequest
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // the handler 400s here
		}
		spec, cfg, err := parseSubmit(&req)
		if err != nil {
			return // the handler 400s here
		}
		// A spec that parsed must be within the server's scene bounds …
		voxels := int64(cfg.Lines) * int64(cfg.Samples) * int64(cfg.Bands)
		if voxels <= 0 || voxels > maxSceneVoxels {
			t.Fatalf("parsed scene escapes the cap: %+v (%d voxels)", cfg, voxels)
		}
		// … and must carry coherent fields for its mode.
		switch spec.Mode {
		case "run", "adaptive":
			if spec.Network == nil {
				t.Fatalf("networked spec without network: %+v", spec)
			}
		case "sequential":
			if spec.CycleTime < 0 {
				t.Fatalf("sequential spec with negative cycle-time: %+v", spec)
			}
		}
		if spec.Timeout < 0 {
			t.Fatalf("negative timeout survived parsing: %+v", spec)
		}
	})
}

// FuzzPipelineJSON drives the /pipelines decode-parse-validate path with
// arbitrary bodies. The invariant: malformed input yields an error (the
// handler's 400), never a panic; a pipeline that parses AND validates
// has a well-formed DAG whose analyze stages sit within the server's
// scene bounds. parsePipeline is pure — no scene is generated, no job is
// submitted — so the fuzzer exercises the full admission path cheaply.
func FuzzPipelineJSON(f *testing.F) {
	seeds := []string{
		fanoutPipeline,
		slowPipeline,
		`{}`,
		`{"stages": []}`,
		`{"name": "solo", "stages": [{"name": "s", "kind": "scene"}]}`,
		`{"stages": [
			{"name": "s", "kind": "scene", "scene": {"lines": 32, "samples": 32, "bands": 16, "seed": 1}},
			{"name": "a", "kind": "analyze", "after": ["s"],
			 "job": {"algorithm": "atdca", "network": "fully-het", "scaled": true}},
			{"name": "z", "kind": "synthesize", "after": ["a"]}]}`,
		`{"stages": [
			{"name": "s", "kind": "scene"},
			{"name": "a", "kind": "analyze", "after": ["s"],
			 "job": {"algorithm": "ufcls", "faults": {"crashes": [{"rank": 2, "at": 0.5}], "max_attempts": 3}}}]}`,
		// Defects the parser or validator must reject cleanly.
		`{"stages": [{"name": "a", "kind": "analyze", "after": ["a"], "job": {"algorithm": "atdca"}}]}`,
		`{"stages": [{"name": "s", "kind": "scene"}, {"name": "s", "kind": "scene"}]}`,
		`{"stages": [
			{"name": "x", "kind": "synthesize", "after": ["y"]},
			{"name": "y", "kind": "synthesize", "after": ["x"]}]}`,
		`{"stages": [{"name": "w", "kind": "mystery"}]}`,
		`{"stages": [{"name": "s", "kind": "scene", "scene": {"lines": -1}}]}`,
		`{"stages": [{"name": "s", "kind": "scene", "job": {"algorithm": "atdca"}}]}`,
		`{"stages": [{"name": "a", "kind": "analyze", "after": ["s"],
		  "job": {"algorithm": "atdca", "scene": {"seed": 4}}},
		  {"name": "s", "kind": "scene"}]}`,
		`{"stages": [{"kind": "scene"}]}`,
		`{"unknown": 1}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var req pipelineRequest
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // the handler 400s here
		}
		spec, err := parsePipeline(&req)
		if err != nil {
			return // the handler 400s here
		}
		order, err := spec.Validate(32)
		if err != nil {
			return // the engine rejects, the handler 400s
		}
		// A validated pipeline has a usable topological order …
		if len(order) != len(spec.Stages) {
			t.Fatalf("topo order covers %d of %d stages", len(order), len(spec.Stages))
		}
		seen := make(map[int]bool, len(order))
		for _, i := range order {
			if i < 0 || i >= len(spec.Stages) || seen[i] {
				t.Fatalf("topo order %v is not a permutation", order)
			}
			seen[i] = true
		}
		// … and every scene stage is within the server's bounds.
		for _, st := range spec.Stages {
			if st.Kind != hyperhet.StageScene {
				continue
			}
			voxels := int64(st.Scene.Lines) * int64(st.Scene.Samples) * int64(st.Scene.Bands)
			if voxels <= 0 || voxels > maxSceneVoxels {
				t.Fatalf("validated scene stage escapes the cap: %+v (%d voxels)", st.Scene, voxels)
			}
		}
	})
}
