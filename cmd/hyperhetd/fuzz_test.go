package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzSubmitJSON drives the /submit decode-and-parse path with arbitrary
// bodies. The invariant under fuzz: malformed input yields an error (the
// handler's 400), never a panic, and never a JobSpec that passes parsing
// with an unbounded scene. Scene materialization is deliberately outside
// the fuzzed path — parseSubmit is pure — so the fuzzer can run millions
// of executions without allocating cubes.
func FuzzSubmitJSON(f *testing.F) {
	seeds := []string{
		tinyJob,
		tracedJob,
		`{}`,
		`{"algorithm": "ufcls", "variant": "homo", "network": "part-het", "priority": "interactive"}`,
		`{"algorithm": "pct", "classes": 5, "scaled": true, "scene": {"lines": 32, "samples": 32, "bands": 16}}`,
		`{"algorithm": "morph", "mode": "run", "network": "thunderhead", "cpus": 4}`,
		`{"mode": "adaptive", "network": "fully-homo", "timeout_ms": 5000}`,
		`{"algorithm": "atdca", "faults": {"crashes": [{"rank": 2, "at": 0.5}], "max_attempts": 3, "recovery": true}}`,
		`{"algorithm": "atdca", "faults": {"seed": 7}}`,
		// Malformed shapes the decoder or parser must reject cleanly.
		`{"algorithm": "atdca", "mode": "sequential", "cycle_time": -1}`,
		`{"algorithm": "nope"}`,
		`{"priority": "urgent"}`,
		`{"timeout_ms": -5}`,
		`{"targets": -1}`,
		`{"scene": {"lines": -3}}`,
		`{"scene": {"lines": 2147483647, "samples": 2147483647, "bands": 2147483647}}`,
		`{"faults": {"seed": 1, "crashes": [{"rank": 0, "at": 1}]}}`,
		`{"unknown_field": true}`,
		`{"algorithm": ["not", "a", "string"]}`,
		`not json at all`,
		`{"scene": {"snr_db": 1e308}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var req submitRequest
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // the handler 400s here
		}
		spec, cfg, err := parseSubmit(&req)
		if err != nil {
			return // the handler 400s here
		}
		// A spec that parsed must be within the server's scene bounds …
		voxels := int64(cfg.Lines) * int64(cfg.Samples) * int64(cfg.Bands)
		if voxels <= 0 || voxels > maxSceneVoxels {
			t.Fatalf("parsed scene escapes the cap: %+v (%d voxels)", cfg, voxels)
		}
		// … and must carry coherent fields for its mode.
		switch spec.Mode {
		case "run", "adaptive":
			if spec.Network == nil {
				t.Fatalf("networked spec without network: %+v", spec)
			}
		case "sequential":
			if spec.CycleTime < 0 {
				t.Fatalf("sequential spec with negative cycle-time: %+v", spec)
			}
		}
		if spec.Timeout < 0 {
			t.Fatalf("negative timeout survived parsing: %+v", spec)
		}
	})
}
