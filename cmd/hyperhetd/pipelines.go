package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	hyperhet "repro"
)

// pipelineRequest is the body of POST /pipelines: a named DAG of stages.
//
//	{
//	  "name": "table3+4",
//	  "stages": [
//	    {"name": "scene", "kind": "scene",
//	     "scene": {"lines": 64, "samples": 32, "bands": 32, "seed": 7}},
//	    {"name": "atdca", "kind": "analyze", "after": ["scene"],
//	     "job": {"algorithm": "ATDCA", "network": "fully-het"}},
//	    {"name": "report", "kind": "synthesize", "after": ["atdca"]}
//	  ]
//	}
type pipelineRequest struct {
	Name   string                 `json:"name"`
	Stages []pipelineStageRequest `json:"stages"`
}

// pipelineStageRequest is one stage. Scene stages carry "scene"; analyze
// stages carry "job" — a full submit document minus the scene, which
// flows in from the upstream stage; synthesize stages carry only edges.
type pipelineStageRequest struct {
	Name  string         `json:"name"`
	Kind  string         `json:"kind"`
	After []string       `json:"after"`
	Scene *sceneRequest  `json:"scene"`
	Job   *submitRequest `json:"job"`
}

// parsePipeline resolves a pipeline request into a flow PipelineSpec. It
// is pure — analyze stages reuse parseSubmit, scene stages reuse
// parseScene, nothing is allocated or generated — so the fuzzer drives
// it directly; DAG-shape defects are left to PipelineSpec.Validate.
func parsePipeline(req *pipelineRequest) (hyperhet.PipelineSpec, error) {
	spec := hyperhet.PipelineSpec{Name: req.Name}
	for i := range req.Stages {
		sr := &req.Stages[i]
		st := hyperhet.StageSpec{
			Name:  sr.Name,
			Kind:  hyperhet.StageKind(strings.ToLower(sr.Kind)),
			After: sr.After,
		}
		switch st.Kind {
		case hyperhet.StageScene:
			if sr.Job != nil {
				return spec, fmt.Errorf("stage %q: a scene stage takes no job", sr.Name)
			}
			var scReq sceneRequest
			if sr.Scene != nil {
				scReq = *sr.Scene
			}
			cfg, err := parseScene(scReq)
			if err != nil {
				return spec, fmt.Errorf("stage %q: %w", sr.Name, err)
			}
			st.Scene = cfg
		case hyperhet.StageAnalyze:
			if sr.Job == nil {
				return spec, fmt.Errorf("stage %q: an analyze stage needs a job", sr.Name)
			}
			if sr.Scene != nil || sr.Job.Scene != (sceneRequest{}) {
				return spec, fmt.Errorf("stage %q: the scene comes from the upstream stage, not the job", sr.Name)
			}
			jobSpec, _, err := parseSubmit(sr.Job)
			if err != nil {
				return spec, fmt.Errorf("stage %q: %w", sr.Name, err)
			}
			st.Job = jobSpec
			st.Scaled = sr.Job.Scaled
		case hyperhet.StageSynthesize:
			if sr.Job != nil || sr.Scene != nil {
				return spec, fmt.Errorf("stage %q: a synthesize stage takes only dependencies", sr.Name)
			}
		}
		// Unknown kinds pass through for Validate's canonical error.
		spec.Stages = append(spec.Stages, st)
	}
	return spec, nil
}

func (s *server) handlePipelineSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var req pipelineRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := parsePipeline(&req)
	if err != nil {
		s.logger.Warn("pipeline rejected", "error", err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.journal != nil {
		spec.JournalPayload = body
	}
	// Pipelines outlive the submit request: derive from Background, not
	// r.Context().
	p, err := s.flow.Submit(context.Background(), spec)
	switch {
	case errors.Is(err, hyperhet.ErrInvalidPipeline):
		s.logger.Warn("pipeline rejected", "error", err)
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, hyperhet.ErrTooManyPipelines):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, hyperhet.ErrFlowEngineClosed), errors.Is(err, hyperhet.ErrSchedulerClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.logger.Info("pipeline submitted", "id", p.ID(), "stages", len(spec.Stages), "name", spec.Name)
	writeJSON(w, http.StatusAccepted, p.Status())
}

// maxPipelinesListing caps GET /pipelines responses; pass ?limit= for
// less.
const maxPipelinesListing = 200

// handlePipelines lists the pipelines the engine knows — running and
// retained finished — oldest first, optionally filtered by ?state= and
// capped by ?limit=.
func (s *server) handlePipelines(w http.ResponseWriter, r *http.Request) {
	var filter hyperhet.PipelineState
	if v := r.URL.Query().Get("state"); v != "" {
		switch st := hyperhet.PipelineState(v); st {
		case "running", "completed", "failed", "cancelled":
			filter = st
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown state %q (want running, completed, failed or cancelled)", v))
			return
		}
	}
	limit, ok := parseLimit(w, r, maxPipelinesListing)
	if !ok {
		return
	}
	statuses := []hyperhet.PipelineStatus{}
	truncated := false
	for _, p := range s.flow.Pipelines() {
		st := p.Status()
		if filter != "" && st.State != filter {
			continue
		}
		if len(statuses) >= limit {
			truncated = true
			break
		}
		statuses = append(statuses, st)
	}
	body := map[string]any{"pipelines": statuses, "count": len(statuses)}
	if truncated {
		body["truncated"] = true
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	p, err := s.flow.Pipeline(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, p.Status())
}

// replayPipelines reinstalls journaled pipelines into the fresh engine:
// finished ones as queryable history, unfinished ones as live
// resubmissions under their original IDs — completed stages restored
// from their journal records, the rest re-run. As with jobs, a pipeline
// whose recorded submission no longer parses is logged and skipped.
func (s *server) replayPipelines(pipes []*hyperhet.JournalPipeline) {
	for _, jp := range pipes {
		if jp.Finished {
			if _, err := s.flow.RestoreFinished(jp); err != nil {
				s.logger.Warn("journal replay: pipeline restore failed", "id", jp.ID, "error", err)
			} else {
				s.logger.Info("journal replay: pipeline restored", "id", jp.ID, "state", jp.State)
			}
			continue
		}
		var req pipelineRequest
		if err := json.Unmarshal(jp.Request, &req); err != nil {
			s.logger.Warn("journal replay: unreadable pipeline request", "id", jp.ID, "error", err)
			continue
		}
		spec, err := parsePipeline(&req)
		if err != nil {
			s.logger.Warn("journal replay: bad pipeline request", "id", jp.ID, "error", err)
			continue
		}
		spec.JournalPayload = jp.Request
		if _, err := s.flow.SubmitResumed(context.Background(), jp, spec); err != nil {
			s.logger.Warn("journal replay: pipeline resume failed", "id", jp.ID, "error", err)
			continue
		}
		s.logger.Info("journal replay: pipeline resumed", "id", jp.ID, "stages_done", len(jp.Stages))
	}
}
