package main

import (
	"fmt"
	"net/http"
	"testing"

	hyperhet "repro"
)

// ids extracts the "id" field of each element of a listing array.
func ids(t *testing.T, doc map[string]any, key string) []string {
	t.Helper()
	raw, ok := doc[key].([]any)
	if !ok {
		t.Fatalf("listing has no %q array: %v", key, doc)
	}
	out := make([]string, 0, len(raw))
	for _, r := range raw {
		entry, _ := r.(map[string]any)
		id, _ := entry["id"].(string)
		out = append(out, id)
	}
	return out
}

// GET /jobs must list in submission order regardless of completion
// order, and say so when ?limit= cut the listing short.
func TestJobsListingOrderAndTruncation(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{Workers: 4, QueueDepth: 32})

	var submitted []string
	for i := 0; i < 5; i++ {
		resp, doc := postJSON(t, ts.URL+"/submit", tinyJob)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d %v", i, resp.StatusCode, doc)
		}
		submitted = append(submitted, doc["id"].(string))
	}
	for _, id := range submitted {
		waitSettled(t, ts.URL, id)
	}

	resp, doc := getJSON(t, ts.URL+"/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	got := ids(t, doc, "jobs")
	if fmt.Sprint(got) != fmt.Sprint(submitted) {
		t.Errorf("listing order %v, want submission order %v", got, submitted)
	}
	if _, present := doc["truncated"]; present {
		t.Errorf("full listing reports truncated: %v", doc)
	}
	if n, _ := doc["count"].(float64); int(n) != len(submitted) {
		t.Errorf("count = %v, want %d", doc["count"], len(submitted))
	}

	_, doc = getJSON(t, ts.URL+"/jobs?limit=3")
	got = ids(t, doc, "jobs")
	if fmt.Sprint(got) != fmt.Sprint(submitted[:3]) {
		t.Errorf("limited listing %v, want first three %v", got, submitted[:3])
	}
	if tr, _ := doc["truncated"].(bool); !tr {
		t.Errorf("limit=3 of 5 jobs did not report truncated: %v", doc)
	}
	if n, _ := doc["count"].(float64); int(n) != 3 {
		t.Errorf("limited count = %v, want 3", doc["count"])
	}

	// A limit the listing fits inside is not a truncation.
	_, doc = getJSON(t, ts.URL+"/jobs?limit=50")
	if _, present := doc["truncated"]; present {
		t.Errorf("roomy limit reports truncated: %v", doc)
	}
}

// scenePipeline builds a minimal one-stage pipeline with a unique name.
func scenePipeline(i int) string {
	return fmt.Sprintf(`{
		"name": "listing-%d",
		"stages": [
			{"name": "scene", "kind": "scene",
			 "scene": {"lines": 16, "samples": 8, "bands": 4, "seed": %d}}
		]
	}`, i, i+1)
}

func TestPipelinesListingOrderAndTruncation(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{Workers: 4, QueueDepth: 32})

	var submitted []string
	for i := 0; i < 4; i++ {
		resp, doc := postJSON(t, ts.URL+"/pipelines", scenePipeline(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("pipeline submit %d = %d %v", i, resp.StatusCode, doc)
		}
		submitted = append(submitted, doc["id"].(string))
	}
	for _, id := range submitted {
		waitPipelineSettled(t, ts.URL, id)
	}

	resp, doc := getJSON(t, ts.URL+"/pipelines")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	got := ids(t, doc, "pipelines")
	if fmt.Sprint(got) != fmt.Sprint(submitted) {
		t.Errorf("listing order %v, want submission order %v", got, submitted)
	}
	if _, present := doc["truncated"]; present {
		t.Errorf("full listing reports truncated: %v", doc)
	}

	_, doc = getJSON(t, ts.URL+"/pipelines?limit=2")
	got = ids(t, doc, "pipelines")
	if fmt.Sprint(got) != fmt.Sprint(submitted[:2]) {
		t.Errorf("limited listing %v, want first two %v", got, submitted[:2])
	}
	if tr, _ := doc["truncated"].(bool); !tr {
		t.Errorf("limit=2 of 4 pipelines did not report truncated: %v", doc)
	}
	if n, _ := doc["count"].(float64); int(n) != 2 {
		t.Errorf("limited count = %v, want 2", doc["count"])
	}
}
