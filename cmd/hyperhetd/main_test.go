package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hyperhet "repro"
)

// testServer spins up the HTTP API over a small scheduler.
func testServer(t *testing.T, cfg hyperhet.SchedulerConfig) *httptest.Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	srv, err := newServer(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		ts.Close()
		srv.close()
	})
	return ts
}

// tinyJob is a fast sequential submission on a minimal scene.
const tinyJob = `{
	"algorithm": "atdca", "mode": "sequential", "targets": 4,
	"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3}
}`

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, doc
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, doc
}

func TestSubmitPollStats(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})

	resp, doc := postJSON(t, ts.URL+"/submit", tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit response has no id: %v", doc)
	}

	deadline := time.Now().Add(10 * time.Second)
	var job map[string]any
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never settled: %v", id, job)
		}
		_, job = getJSON(t, ts.URL+"/jobs/"+id)
		if st, _ := job["state"].(string); st == "completed" || st == "failed" || st == "cancelled" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job["state"] != "completed" {
		t.Fatalf("job settled as %v (error %v)", job["state"], job["error"])
	}
	result, ok := job["result"].(map[string]any)
	if !ok {
		t.Fatalf("completed job has no result: %v", job)
	}
	if vs, _ := result["virtual_seconds"].(float64); vs <= 0 {
		t.Fatalf("virtual_seconds = %v, want > 0", result["virtual_seconds"])
	}
	if tg, _ := result["targets"].(float64); int(tg) != 4 {
		t.Fatalf("targets = %v, want 4", result["targets"])
	}

	resp, stats := getJSON(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if c, _ := stats["completed"].(float64); c < 1 {
		t.Fatalf("stats report %v completed, want >= 1", stats["completed"])
	}
}

// waitSettled polls a job until it leaves the queued/running states.
func waitSettled(t *testing.T, url, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never settled", id)
		}
		_, job := getJSON(t, url+"/jobs/"+id)
		if st, _ := job["state"].(string); st == "completed" || st == "failed" || st == "cancelled" {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A submission with an injected rank crash fails its first attempt, is
// retried by the scheduler, and completes — with the attempt history
// visible in the job JSON.
func TestChaosJobRetriesOverHTTP(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 10 * time.Millisecond,
	})
	const chaos = `{
		"algorithm": "atdca", "network": "fully-het", "targets": 4,
		"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3},
		"faults": {"crashes": [{"rank": 2, "at": 0.0001, "attempt": 1}], "max_attempts": 3}
	}`
	resp, doc := postJSON(t, ts.URL+"/submit", chaos)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (%v)", resp.StatusCode, doc)
	}
	job := waitSettled(t, ts.URL, doc["id"].(string))
	if job["state"] != "completed" {
		t.Fatalf("chaos job settled as %v (error %v)", job["state"], job["error"])
	}
	if n, _ := job["attempts"].(float64); n <= 1 {
		t.Fatalf("attempts = %v, want > 1", job["attempts"])
	}
	history, ok := job["attempt_history"].([]any)
	if !ok || len(history) != 2 {
		t.Fatalf("attempt_history = %v, want 2 records", job["attempt_history"])
	}
	first := history[0].(map[string]any)
	if msg, _ := first["error"].(string); !strings.Contains(msg, "rank 2") {
		t.Fatalf("first attempt error = %q, want a rank-2 failure", msg)
	}
	if retry, _ := first["retryable"].(bool); !retry {
		t.Fatalf("first attempt record = %v, want retryable", first)
	}
}

// A permanent worker crash with in-run recovery enabled completes in a
// single scheduler attempt via degraded-mode re-partitioning, and the
// result summary reports the recovery bookkeeping.
func TestChaosJobDegradedRecoveryOverHTTP(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})
	const chaos = `{
		"algorithm": "atdca", "network": "fully-het", "targets": 4,
		"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3},
		"faults": {"crashes": [{"rank": 3, "at": 0.0001, "attempt": -1}], "recovery": true}
	}`
	resp, doc := postJSON(t, ts.URL+"/submit", chaos)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (%v)", resp.StatusCode, doc)
	}
	job := waitSettled(t, ts.URL, doc["id"].(string))
	if job["state"] != "completed" {
		t.Fatalf("recovery job settled as %v (error %v)", job["state"], job["error"])
	}
	result, ok := job["result"].(map[string]any)
	if !ok {
		t.Fatalf("completed job has no result: %v", job)
	}
	if n, _ := result["run_attempts"].(float64); n != 2 {
		t.Fatalf("run_attempts = %v, want 2", result["run_attempts"])
	}
	ranks, _ := result["failed_ranks"].([]any)
	if len(ranks) != 1 || ranks[0].(float64) != 3 {
		t.Fatalf("failed_ranks = %v, want [3]", result["failed_ranks"])
	}
	if ov, _ := result["recovery_overhead_seconds"].(float64); ov <= 0 {
		t.Fatalf("recovery_overhead_seconds = %v, want > 0", result["recovery_overhead_seconds"])
	}
	if procs, _ := result["procs"].(float64); procs != 15 {
		t.Fatalf("degraded run used %v procs, want 15", result["procs"])
	}
}

func TestSubmitRejectsBadFaults(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})
	cases := []struct {
		name, body string
	}{
		{"seed and events", `{"algorithm": "atdca", "network": "fully-het",
			"faults": {"seed": 7, "crashes": [{"rank": 1, "at": 1}]}}`},
		{"out-of-range rank", `{"algorithm": "atdca", "network": "fully-het",
			"faults": {"crashes": [{"rank": 99, "at": 1}]}}`},
		{"negative budget", `{"algorithm": "atdca", "network": "fully-het",
			"faults": {"max_attempts": -2}}`},
		{"seeded sequential", `{"algorithm": "atdca", "mode": "sequential",
			"faults": {"seed": 7}}`},
	}
	for _, tc := range cases {
		resp, doc := postJSON(t, ts.URL+"/submit", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%v), want 400", tc.name, resp.StatusCode, doc)
		}
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})
	cases := []struct {
		name, body string
	}{
		{"garbage", "{"},
		{"unknown field", `{"algorithm": "atdca", "frobnicate": true}`},
		{"bad algorithm", `{"algorithm": "fft"}`},
		{"bad variant", `{"algorithm": "atdca", "variant": "diagonal"}`},
		{"bad network", `{"algorithm": "atdca", "network": "ethernet"}`},
		{"bad priority", `{"algorithm": "atdca", "priority": "urgent"}`},
		{"bad scene", `{"algorithm": "atdca", "scene": {"lines": 2, "samples": 2, "bands": 2}}`},
	}
	for _, tc := range cases {
		resp, doc := postJSON(t, ts.URL+"/submit", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%v), want 400", tc.name, resp.StatusCode, doc)
		}
		if msg, _ := doc["error"].(string); msg == "" {
			t.Errorf("%s: error body missing", tc.name)
		}
	}
}

func TestBackpressureReturns429(t *testing.T) {
	// One worker and a one-slot queue: with the worker occupied and the
	// slot taken, a further submission must be rejected with 429. The
	// blocker job crashes instantly on every attempt and then sits in a
	// long retry backoff, so the worker is held by a *sleep*, not by
	// computation — a CPU-heavy blocker starves the HTTP handler itself
	// on a single-core runner, letting the worker drain the queue
	// between slowed-down submissions (the old, flaky shape of this
	// test).
	ts := testServer(t, hyperhet.SchedulerConfig{
		Workers: 1, QueueDepth: 1, CacheEntries: -1,
		RetryBaseDelay: 2 * time.Second, RetryMaxDelay: 2 * time.Second,
	})
	const slow = `{
		"algorithm": "atdca", "network": "fully-het", "targets": 4, "no_cache": true,
		"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3},
		"faults": {"crashes": [{"rank": 1, "at": 0, "attempt": -1}], "max_attempts": 4}
	}`
	sawFull := false
	for i := 0; i < 8 && !sawFull; i++ {
		resp, doc := postJSON(t, ts.URL+"/submit", slow)
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			sawFull = true
			if msg, _ := doc["error"].(string); !strings.Contains(msg, "queue full") {
				t.Fatalf("429 error = %q, want queue-full", msg)
			}
		default:
			t.Fatalf("submit %d: status %d (%v)", i, resp.StatusCode, doc)
		}
	}
	if !sawFull {
		t.Fatal("never saw a 429 despite a one-slot queue")
	}
}

func TestCancelEndpoint(t *testing.T) {
	// The job crashes instantly and then sits in long retry backoffs, so
	// there is a wide, CPU-independent window in which the cancel lands
	// (racing a cancel against a real compute run is flaky on a loaded
	// single-core runner — the run can finish first).
	ts := testServer(t, hyperhet.SchedulerConfig{
		Workers: 1, QueueDepth: 4, CacheEntries: -1,
		RetryBaseDelay: 2 * time.Second, RetryMaxDelay: 2 * time.Second,
	})
	body := `{
		"algorithm": "atdca", "network": "fully-het", "targets": 4,
		"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3},
		"faults": {"crashes": [{"rank": 1, "at": 0, "attempt": -1}], "max_attempts": 10}
	}`
	resp, doc := postJSON(t, ts.URL+"/submit", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (%v)", resp.StatusCode, doc)
	}
	id := doc["id"].(string)
	resp, _ = postJSON(t, ts.URL+"/jobs/"+id+"/cancel", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never settled")
		}
		_, job := getJSON(t, ts.URL+"/jobs/"+id)
		if st, _ := job["state"].(string); st == "cancelled" {
			break
		} else if st == "completed" || st == "failed" {
			t.Fatalf("job settled as %v, want cancelled", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, _ = postJSON(t, ts.URL+"/jobs/no-such-job/cancel", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job status = %d, want 404", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/jobs/no-such-job")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown job status = %d, want 404", resp.StatusCode)
	}
}
