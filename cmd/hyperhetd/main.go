// Command hyperhetd serves the analysis-job scheduler over HTTP: clients
// submit simulated hyperspectral analysis runs, poll their status and read
// aggregate scheduler counters.
//
// Usage:
//
//	hyperhetd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	          [-retain N] [-timeout D]
//
// Endpoints (all JSON):
//
//	POST /submit           submit a job; 202 with {"id": ...} on admission,
//	                       429 when the bounded queue is full
//	GET  /jobs/{id}        job status, including result summary when done
//	POST /jobs/{id}/cancel abort a queued or running job
//	GET  /stats            scheduler counters and server uptime
//	GET  /healthz          liveness probe
//
// A submission names an algorithm, a platform and a scene; the server
// generates (and caches) synthetic scenes on demand, so a job request is
// a small JSON document, not a cube upload:
//
//	curl -s localhost:8080/submit -d '{
//	  "algorithm": "ATDCA", "variant": "Hetero", "network": "fully-het",
//	  "priority": "interactive", "timeout_ms": 60000,
//	  "scene": {"lines": 64, "samples": 32, "bands": 32, "seed": 7}
//	}'
//
// An optional "faults" block injects a deterministic failure plan —
// explicit rank crashes, link slowdowns and compute degradations, or a
// seeded random plan — plus a scheduler retry budget and an in-run
// degraded-mode recovery switch; the job's status then carries its full
// attempt history:
//
//	"faults": {"crashes": [{"rank": 2, "at": 0.5}], "max_attempts": 3}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	hyperhet "repro"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 4, "size of the simulation worker pool")
		queue   = flag.Int("queue", 64, "submission queue depth (backpressure bound)")
		cache   = flag.Int("cache", 128, "result cache entries (negative disables)")
		retain  = flag.Int("retain", 1024, "finished jobs kept queryable by id")
		timeout = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hyperhetd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *workers <= 0 || *queue <= 0 || *retain <= 0 {
		fmt.Fprintln(os.Stderr, "hyperhetd: -workers, -queue and -retain must be positive")
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintln(os.Stderr, "hyperhetd: -timeout must not be negative")
		os.Exit(2)
	}

	srv := newServer(hyperhet.SchedulerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RetainJobs:     *retain,
		DefaultTimeout: *timeout,
	})
	defer srv.close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("hyperhetd listening on %s (%d workers, queue %d)", *addr, *workers, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("hyperhetd: %v", err)
	}
}

// maxCachedScenes bounds the server-side scene cache: scenes are a few
// megabytes each and requests overwhelmingly reuse a handful of configs.
const maxCachedScenes = 16

// server wires the scheduler to the HTTP API.
type server struct {
	sched *hyperhet.Scheduler
	start time.Time

	mu     sync.Mutex
	scenes map[hyperhet.SceneConfig]*sceneEntry
}

// sceneEntry is one generated scene plus its precomputed cache digest.
type sceneEntry struct {
	cube   *hyperhet.Cube
	digest string
}

func newServer(cfg hyperhet.SchedulerConfig) *server {
	return &server{
		sched:  hyperhet.NewScheduler(cfg),
		start:  time.Now(),
		scenes: make(map[hyperhet.SceneConfig]*sceneEntry),
	}
}

func (s *server) close() { s.sched.Close() }

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /submit", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// submitRequest is the body of POST /submit.
type submitRequest struct {
	Algorithm string       `json:"algorithm"`
	Variant   string       `json:"variant"`    // hetero (default) or homo
	Mode      string       `json:"mode"`       // run (default), adaptive, sequential
	Network   string       `json:"network"`    // fully-het, fully-homo, part-het, part-homo, thunderhead
	CPUs      int          `json:"cpus"`       // thunderhead node count
	CycleTime float64      `json:"cycle_time"` // sequential-mode processor speed
	Priority  string       `json:"priority"`   // interactive or batch (default)
	TimeoutMS int64        `json:"timeout_ms"`
	Targets   int          `json:"targets"`
	Classes   int          `json:"classes"`
	Scaled    bool          `json:"scaled"` // charge full-scene work via ScaledParams
	Label     string        `json:"label"`
	NoCache   bool          `json:"no_cache"`
	Scene     sceneRequest  `json:"scene"`
	Faults    *faultRequest `json:"faults"`
}

// faultRequest injects a deterministic failure plan into the run: either
// explicit events or a seeded random plan, plus the scheduler's retry
// budget and an optional degraded-mode recovery switch. Fault jobs bypass
// the result cache — chaos runs exist to exercise the failure path.
type faultRequest struct {
	Crashes       []hyperhet.FaultCrash    `json:"crashes"`
	LinkSlowdowns []hyperhet.FaultLinkSlow `json:"link_slowdowns"`
	Degradations  []hyperhet.FaultDegrade  `json:"degradations"`
	Seed          int64                    `json:"seed"`         // nonzero: generate a random plan instead
	MaxAttempts   int                      `json:"max_attempts"` // scheduler retry budget (0 = default)
	Recovery      bool                     `json:"recovery"`     // in-run degraded-mode recovery on worker death
}

// sceneRequest selects the synthetic scene; zero values take the reduced
// WTC defaults.
type sceneRequest struct {
	Lines   int     `json:"lines"`
	Samples int     `json:"samples"`
	Bands   int     `json:"bands"`
	Seed    int64   `json:"seed"`
	SNRdB   float64 `json:"snr_db"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := s.buildSpec(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Jobs outlive the submit request: derive from Background, not
	// r.Context(), which dies as soon as this handler returns.
	job, err := s.sched.Submit(context.Background(), spec)
	switch {
	case errors.Is(err, hyperhet.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, hyperhet.ErrSchedulerClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// buildSpec resolves a submit request into a scheduler JobSpec.
func (s *server) buildSpec(req *submitRequest) (hyperhet.JobSpec, error) {
	var spec hyperhet.JobSpec

	mode := hyperhet.JobMode(strings.ToLower(req.Mode))
	if req.Mode == "" {
		mode = hyperhet.ModeRun
	}
	spec.Mode = mode

	if mode != hyperhet.ModeAdaptive {
		switch strings.ToLower(req.Algorithm) {
		case "atdca":
			spec.Algorithm = hyperhet.ATDCA
		case "ufcls":
			spec.Algorithm = hyperhet.UFCLS
		case "pct":
			spec.Algorithm = hyperhet.PCT
		case "morph":
			spec.Algorithm = hyperhet.MORPH
		default:
			return spec, fmt.Errorf("unknown algorithm %q (want atdca, ufcls, pct or morph)", req.Algorithm)
		}
	}
	switch strings.ToLower(req.Variant) {
	case "", "hetero":
		spec.Variant = hyperhet.Hetero
	case "homo":
		spec.Variant = hyperhet.Homo
	default:
		return spec, fmt.Errorf("unknown variant %q (want hetero or homo)", req.Variant)
	}
	if mode == hyperhet.ModeSequential {
		if req.CycleTime < 0 {
			return spec, fmt.Errorf("invalid cycle_time %v", req.CycleTime)
		}
		spec.CycleTime = req.CycleTime
	} else {
		net, err := resolveNetwork(req.Network, req.CPUs)
		if err != nil {
			return spec, err
		}
		spec.Network = net
	}

	pri, err := hyperhet.ParseJobPriority(strings.ToLower(req.Priority))
	if err != nil {
		return spec, err
	}
	spec.Priority = pri
	if req.TimeoutMS < 0 {
		return spec, fmt.Errorf("invalid timeout_ms %d", req.TimeoutMS)
	}
	spec.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	spec.Label = req.Label
	spec.NoCache = req.NoCache

	cfg := hyperhet.DefaultSceneConfig()
	if req.Scene.Lines != 0 {
		cfg.Lines = req.Scene.Lines
	}
	if req.Scene.Samples != 0 {
		cfg.Samples = req.Scene.Samples
	}
	if req.Scene.Bands != 0 {
		cfg.Bands = req.Scene.Bands
	}
	if req.Scene.Seed != 0 {
		cfg.Seed = req.Scene.Seed
	}
	if req.Scene.SNRdB != 0 {
		cfg.SNRdB = req.Scene.SNRdB
	}
	entry, err := s.scene(cfg)
	if err != nil {
		return spec, err
	}
	spec.Cube = entry.cube
	spec.CubeDigest = entry.digest

	spec.Params = hyperhet.DefaultParams()
	if req.Targets != 0 {
		if req.Targets < 0 {
			return spec, fmt.Errorf("invalid targets %d", req.Targets)
		}
		spec.Params.Targets = req.Targets
	}
	if req.Classes != 0 {
		if req.Classes < 0 {
			return spec, fmt.Errorf("invalid classes %d", req.Classes)
		}
		spec.Params.PCT.Classes = req.Classes
		spec.Params.Morph.Classes = req.Classes
	}
	if req.Scaled {
		spec.Params = hyperhet.ScaledParams(spec.Params, cfg)
	}
	if req.Faults != nil {
		plan := &hyperhet.FaultPlan{
			Crashes:   req.Faults.Crashes,
			LinkSlows: req.Faults.LinkSlowdowns,
			Degrades:  req.Faults.Degradations,
		}
		if req.Faults.Seed != 0 {
			if !plan.Empty() {
				return spec, fmt.Errorf("faults: give explicit events or a seed, not both")
			}
			if spec.Network == nil {
				return spec, fmt.Errorf("faults: seeded plans need a networked mode")
			}
			var err error
			plan, err = hyperhet.RandomFaultPlan(req.Faults.Seed, hyperhet.RandomFaultConfig{Ranks: spec.Network.Size()})
			if err != nil {
				return spec, err
			}
		}
		if req.Faults.MaxAttempts < 0 {
			return spec, fmt.Errorf("faults: invalid max_attempts %d", req.Faults.MaxAttempts)
		}
		spec.Params.Faults = plan
		spec.Params.Recovery = hyperhet.RecoveryOptions{Enabled: req.Faults.Recovery}
		spec.MaxAttempts = req.Faults.MaxAttempts
	}
	return spec, nil
}

// scene returns the cached scene for cfg, generating it on first use.
func (s *server) scene(cfg hyperhet.SceneConfig) (*sceneEntry, error) {
	s.mu.Lock()
	if entry, ok := s.scenes[cfg]; ok {
		s.mu.Unlock()
		return entry, nil
	}
	s.mu.Unlock()

	// Generate outside the lock: scenes take real time to synthesize and
	// concurrent submissions must not serialize behind one another. A
	// duplicate generation race just wastes one generation.
	sc, err := hyperhet.GenerateScene(cfg)
	if err != nil {
		return nil, fmt.Errorf("scene generation: %w", err)
	}
	entry := &sceneEntry{cube: sc.Cube, digest: hyperhet.SchedCubeDigest(sc.Cube)}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.scenes) >= maxCachedScenes {
		// Simple reset beats tracking recency for a cache this small.
		s.scenes = make(map[hyperhet.SceneConfig]*sceneEntry)
	}
	s.scenes[cfg] = entry
	return entry, nil
}

func resolveNetwork(name string, cpus int) (*hyperhet.Network, error) {
	switch strings.ToLower(name) {
	case "", "fully-het":
		return hyperhet.FullyHeterogeneous(), nil
	case "fully-homo":
		return hyperhet.FullyHomogeneous(), nil
	case "part-het":
		return hyperhet.PartiallyHeterogeneous(), nil
	case "part-homo":
		return hyperhet.PartiallyHomogeneous(), nil
	case "thunderhead":
		if cpus == 0 {
			cpus = 16
		}
		return hyperhet.Thunderhead(cpus)
	}
	return nil, fmt.Errorf("unknown network %q (want fully-het, fully-homo, part-het, part-homo or thunderhead)", name)
}

// jobResponse decorates the scheduler's status with a result summary.
type jobResponse struct {
	hyperhet.JobStatus
	Result *resultSummary `json:"result,omitempty"`
}

// resultSummary is the compact outcome of a completed run.
type resultSummary struct {
	Network        string  `json:"network"`
	Procs          int     `json:"procs"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	ComSeconds     float64 `json:"com_seconds"`
	SeqSeconds     float64 `json:"seq_seconds"`
	ParSeconds     float64 `json:"par_seconds"`
	ImbalanceDAll  float64 `json:"imbalance_d_all"`
	Targets        int     `json:"targets,omitempty"`
	Classes        int     `json:"classes,omitempty"`
	// Degraded-mode recovery bookkeeping (in-run, distinct from the
	// scheduler-level attempt history in the job status).
	RunAttempts      int     `json:"run_attempts,omitempty"`
	FailedRanks      []int   `json:"failed_ranks,omitempty"`
	RecoveryOverhead float64 `json:"recovery_overhead_seconds,omitempty"`
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.sched.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp := jobResponse{JobStatus: job.Status()}
	if rep := job.Report(); rep != nil {
		sum := &resultSummary{
			Network:        rep.Network,
			Procs:          rep.Procs,
			VirtualSeconds: rep.WallTime,
			ComSeconds:     rep.Com,
			SeqSeconds:     rep.Seq,
			ParSeconds:     rep.Par,
			ImbalanceDAll:  rep.DAll,
		}
		if rep.Detection != nil {
			sum.Targets = len(rep.Detection.Targets)
		}
		if rep.Classification != nil {
			sum.Classes = len(rep.Classification.Classes)
		}
		if rep.Attempts > 1 {
			sum.RunAttempts = rep.Attempts
			sum.FailedRanks = rep.FailedRanks
			sum.RecoveryOverhead = rep.RecoveryOverhead
		}
		resp.Result = sum
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancel requested"})
}

// statsResponse is the body of GET /stats.
type statsResponse struct {
	hyperhet.SchedulerStats
	UptimeSeconds float64 `json:"uptime_seconds"`
	ScenesCached  int     `json:"scenes_cached"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	scenes := len(s.scenes)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statsResponse{
		SchedulerStats: s.sched.Stats(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		ScenesCached:   scenes,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
