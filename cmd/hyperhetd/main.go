// Command hyperhetd serves the analysis-job scheduler over HTTP: clients
// submit simulated hyperspectral analysis runs, poll their status and read
// aggregate scheduler counters.
//
// Usage:
//
//	hyperhetd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	          [-retain N] [-timeout D] [-journal DIR] [-drain-timeout D]
//
// Endpoints (JSON unless noted):
//
//	POST /submit           submit a job; 202 with {"id": ...} on admission,
//	                       429 when the bounded queue is full, 503 while
//	                       draining
//	GET  /jobs             list jobs; ?state= filters, ?limit= caps
//	GET  /jobs/{id}        job status, including result summary when done
//	GET  /jobs/{id}/trace  Chrome trace-event JSON of a traced run (submit
//	                       with "trace": true); load in Perfetto
//	POST /jobs/{id}/cancel abort a queued or running job
//	POST /pipelines        submit a multi-stage analysis pipeline (a DAG
//	                       of scene/analyze/synthesize stages); 202 with
//	                       the initial status, 400 on an invalid DAG, 429
//	                       at the active-pipeline cap, 503 while draining
//	GET  /pipelines        list pipelines; ?state= filters, ?limit= caps
//	GET  /pipelines/{id}   pipeline status: per-stage states, cache hits,
//	                       synthesis results when done
//	GET  /stats            scheduler counters, journal replay health and
//	                       server uptime
//	GET  /metrics          Prometheus text exposition of every instrument
//	GET  /debug/pprof/*    Go runtime profiles (only with -pprof)
//	GET  /healthz          liveness probe
//	GET  /readyz           readiness probe; 503 while draining
//
// A submission names an algorithm, a platform and a scene; the server
// generates (and caches) synthetic scenes on demand, so a job request is
// a small JSON document, not a cube upload:
//
//	curl -s localhost:8080/submit -d '{
//	  "algorithm": "ATDCA", "variant": "Hetero", "network": "fully-het",
//	  "priority": "interactive", "timeout_ms": 60000,
//	  "scene": {"lines": 64, "samples": 32, "bands": 32, "seed": 7}
//	}'
//
// An optional "faults" block injects a deterministic failure plan —
// explicit rank crashes, link slowdowns and compute degradations, or a
// seeded random plan — plus a scheduler retry budget and an in-run
// degraded-mode recovery switch; the job's status then carries its full
// attempt history:
//
//	"faults": {"crashes": [{"rank": 2, "at": 0.5}], "max_attempts": 3}
//
// A pipeline composes those building blocks into one submission: scene
// stages generate (or fetch) cubes, analyze stages fan algorithm runs
// out over them through the scheduler (memoized in its result cache),
// and synthesize stages score the reports against ground truth:
//
//	curl -s localhost:8080/pipelines -d '{
//	  "stages": [
//	    {"name": "scene", "kind": "scene", "scene": {"seed": 7}},
//	    {"name": "atdca", "kind": "analyze", "after": ["scene"],
//	     "job": {"algorithm": "ATDCA"}},
//	    {"name": "report", "kind": "synthesize", "after": ["atdca"]}
//	  ]
//	}'
//
// With -journal DIR the server is durable: every job and pipeline
// lifecycle edge is appended to an fsync'd write-ahead log, and a
// restarted server replays it — finished work comes back as queryable
// history (completed results re-seed the cache), unfinished jobs are
// resubmitted under their original IDs and, when checkpointed
// ("checkpoint": true, or any fault job with a retry budget or
// recovery), resume from their last completed round; unfinished
// pipelines resume with their journal-recorded completed stages
// restored, re-running only the rest. SIGTERM drains gracefully:
// submissions get 503, running work stops without terminal journal
// records, and the next boot resumes it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	hyperhet "repro"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 4, "size of the simulation worker pool")
		queue   = flag.Int("queue", 64, "submission queue depth (backpressure bound)")
		cache   = flag.Int("cache", 128, "result cache entries (negative disables)")
		retain  = flag.Int("retain", 1024, "finished jobs kept queryable by id")
		timeout = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		pprofOn = flag.Bool("pprof", false, "expose Go runtime profiles at /debug/pprof/")
		journal = flag.String("journal", "", "job-journal directory; enables durability and crash/restart resume")
		drainTO = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on SIGTERM")
		kernelW = flag.Int("kernel-workers", 0, "host goroutine budget for data-parallel kernels, shared across jobs (0 = GOMAXPROCS)")
		shed    = flag.Bool("shed", false, "enable overload control: adaptive AIMD admission, deadline-aware shedding (429 + Retry-After) and per-backend circuit breaking (503)")
		hedge   = flag.Bool("hedge", false, "enable straggler hedging: a job running past its class p95 races a second attempt, first finisher wins")
		balance = flag.Bool("balance", false, "schedule every job's parallel phases demand-driven by default (per-request \"balance\": true opts single jobs in regardless)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hyperhetd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *workers <= 0 || *queue <= 0 || *retain <= 0 {
		fmt.Fprintln(os.Stderr, "hyperhetd: -workers, -queue and -retain must be positive")
		os.Exit(2)
	}
	if *timeout < 0 || *drainTO < 0 {
		fmt.Fprintln(os.Stderr, "hyperhetd: -timeout and -drain-timeout must not be negative")
		os.Exit(2)
	}
	if *kernelW < 0 {
		fmt.Fprintln(os.Stderr, "hyperhetd: -kernel-workers must not be negative")
		os.Exit(2)
	}

	cfg := hyperhet.SchedulerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RetainJobs:     *retain,
		DefaultTimeout: *timeout,
		KernelWorkers:  *kernelW,
	}
	if *shed || *hedge {
		gcfg := hyperhet.GuardConfig{
			Hedge: hyperhet.GuardHedgeConfig{Enabled: *hedge},
		}
		if !*shed {
			// Hedging without -shed: run the admission side wide open (the
			// limit pinned far above any realistic in-flight count, no
			// breakers) so the guard only supplies hedge timing.
			const wideOpen = 1 << 20
			gcfg.Limiter = hyperhet.GuardLimiterConfig{Initial: wideOpen, Min: wideOpen, Max: wideOpen}
			gcfg.DisableBreaker = true
		}
		cfg.Guard = hyperhet.NewGuard(gcfg)
	}
	srv, err := newServer(cfg, *journal)
	if err != nil {
		log.Fatalf("hyperhetd: %v", err)
	}
	srv.enablePprof = *pprofOn
	srv.defaultBalance = *balance
	defer srv.close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Drain before closing the listener: in-flight and late submissions
		// see 503 while running jobs checkpoint and step aside, then the
		// HTTP server itself shuts down.
		srv.drain(*drainTO)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("hyperhetd listening on %s (%d workers, queue %d, shed=%v, hedge=%v)", *addr, *workers, *queue, *shed, *hedge)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("hyperhetd: %v", err)
	}
}

// maxCachedScenes bounds the server-side scene cache: scenes are a few
// megabytes each and requests overwhelmingly reuse a handful of configs.
const maxCachedScenes = 16

// Server-side scene bounds: a submission is a small JSON document that
// makes the server allocate lines*samples*bands float32 voxels, so the
// decoder must refuse sizes that would let one request exhaust memory.
// 64M voxels is 256 MB — comfortably above the paper's reduced scenes,
// far below a parsed-from-JSON denial of service.
const (
	maxSceneDim    = 1 << 16
	maxSceneVoxels = 64 << 20
)

// server wires the scheduler and the pipeline engine to the HTTP API.
type server struct {
	sched       *hyperhet.Scheduler
	flow        *hyperhet.FlowEngine
	journal     *hyperhet.SchedJournal // nil without -journal
	reg         *hyperhet.TelemetryRegistry
	logger      *slog.Logger
	start       time.Time
	enablePprof bool
	draining    atomic.Bool

	// defaultBalance makes every submitted job demand-driven (-balance);
	// requests can still opt in individually with "balance": true.
	defaultBalance bool

	// replayStats records what the boot-time journal replay read and
	// dropped; nil without -journal. Surfaced in /stats.
	replayStats *hyperhet.SchedReplayStats

	mu     sync.Mutex
	scenes map[hyperhet.SceneConfig]*sceneEntry
}

// sceneEntry is one generated scene (cube plus ground truth — pipeline
// synthesis stages score against the truth) with its precomputed cache
// digest.
type sceneEntry struct {
	sc     *hyperhet.Scene
	digest string
}

// newServer builds the server. A non-empty journalDir makes it durable:
// existing journal records are replayed into the scheduler before the
// first request is served, then the journal is reopened for appending.
func newServer(cfg hyperhet.SchedulerConfig, journalDir string) (*server, error) {
	reg := hyperhet.NewTelemetryRegistry()
	cfg.Registry = reg
	s := &server{
		reg: reg,
		logger: slog.New(hyperhet.NewCountingLogHandler(reg,
			slog.NewTextHandler(os.Stderr, nil))),
		start:  time.Now(),
		scenes: make(map[hyperhet.SceneConfig]*sceneEntry),
	}
	var recovered *hyperhet.SchedJournalState
	if journalDir != "" {
		var err error
		recovered, err = hyperhet.ReplaySchedJournalState(journalDir)
		if err != nil {
			return nil, fmt.Errorf("replaying journal: %w", err)
		}
		s.journal, err = hyperhet.OpenSchedJournal(journalDir)
		if err != nil {
			return nil, fmt.Errorf("opening journal: %w", err)
		}
		cfg.Journal = s.journal
	}
	s.sched = hyperhet.NewScheduler(cfg)
	var err error
	s.flow, err = hyperhet.NewFlowEngine(hyperhet.FlowConfig{
		Scheduler: s.sched,
		Scenes:    s.provideScene,
		Journal:   s.journal,
		Registry:  reg,
	})
	if err != nil {
		s.sched.Close()
		return nil, err
	}
	if recovered != nil {
		s.replayStats = &recovered.Stats
		s.replay(recovered.Jobs)
		s.replayPipelines(recovered.Pipelines)
	}
	return s, nil
}

// replay reinstalls journaled jobs into the fresh scheduler: finished
// ones as queryable history, unfinished ones as live resubmissions under
// their original IDs (resuming from their last checkpointed round). A job
// whose recorded request no longer parses is logged and skipped — replay
// must never prevent the server from starting.
func (s *server) replay(jobs []*hyperhet.JournalJob) {
	for _, jj := range jobs {
		var req submitRequest
		if err := json.Unmarshal(jj.Request, &req); err != nil {
			s.logger.Warn("journal replay: unreadable request", "id", jj.ID, "error", err)
			continue
		}
		spec, sceneCfg, err := parseSubmit(&req)
		if err != nil {
			s.logger.Warn("journal replay: bad request", "id", jj.ID, "error", err)
			continue
		}
		if s.defaultBalance {
			spec.Balance = true
		}
		if jj.Finished {
			// History only: no scene materialization, no execution.
			if _, err := s.sched.RestoreFinished(jj, spec); err != nil {
				s.logger.Warn("journal replay: restore failed", "id", jj.ID, "error", err)
			} else {
				s.logger.Info("journal replay: restored", "id", jj.ID, "state", jj.State)
			}
			continue
		}
		entry, _, err := s.scene(sceneCfg)
		if err != nil {
			s.logger.Warn("journal replay: scene failed", "id", jj.ID, "error", err)
			continue
		}
		spec.Cube = entry.sc.Cube
		spec.CubeDigest = entry.digest
		if req.Scaled {
			spec.Params = hyperhet.ScaledParams(spec.Params, sceneCfg)
		}
		spec.JournalPayload = jj.Request
		if _, err := s.sched.SubmitResumed(context.Background(), jj, spec); err != nil {
			s.logger.Warn("journal replay: resume failed", "id", jj.ID, "error", err)
			continue
		}
		round := 0
		if jj.Snapshot != nil {
			round = jj.Snapshot.Round
		}
		s.logger.Info("journal replay: resumed", "id", jj.ID, "attempts", jj.Attempts, "round", round)
	}
}

// drain shuts the server down gracefully ahead of process exit:
// submissions are rejected, active pipelines and running jobs stop
// WITHOUT terminal journal records (the next boot resumes them), and the
// journal is closed once everything settles or the deadline passes. The
// engine drains before the scheduler: cancelling pipelines releases
// their stage jobs, so the scheduler's drain has nothing phantom to wait
// on.
func (s *server) drain(timeout time.Duration) {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.flow.Drain()
		s.sched.Drain()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		s.logger.Info("drain complete")
	case <-timer.C:
		s.logger.Warn("drain deadline passed; exiting anyway", "timeout", timeout)
	}
	s.journal.Close()
}

func (s *server) close() {
	s.flow.Close()
	s.sched.Close()
	s.journal.Close()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /submit", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /pipelines", s.handlePipelineSubmit)
	mux.HandleFunc("GET /pipelines", s.handlePipelines)
	mux.HandleFunc("GET /pipelines/{id}", s.handlePipeline)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Readiness is distinct from liveness: a draining server is still
	// alive (health checks pass, status queries answer) but must be
	// rotated out of load balancing before it exits. The three bodies are
	// deliberately distinct so probes can tell terminal unreadiness
	// ("draining" — rotate out for good) from transient unreadiness
	// ("breaker-open" — a backend circuit breaker is rejecting; the
	// server recovers once its cooldown probe succeeds).
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.draining.Load():
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		case s.sched.GuardState().BreakersOpen > 0:
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "breaker-open"})
		default:
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}
	})
	if s.enablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// submitRequest is the body of POST /submit.
type submitRequest struct {
	Algorithm string  `json:"algorithm"`
	Variant   string  `json:"variant"`    // hetero (default) or homo
	Mode      string  `json:"mode"`       // run (default), adaptive, sequential
	Network   string  `json:"network"`    // fully-het, fully-homo, part-het, part-homo, thunderhead
	CPUs      int     `json:"cpus"`       // thunderhead node count
	CycleTime float64 `json:"cycle_time"` // sequential-mode processor speed
	Priority  string  `json:"priority"`   // interactive or batch (default)
	TimeoutMS int64   `json:"timeout_ms"`
	Targets   int     `json:"targets"`
	Classes   int     `json:"classes"`
	Scaled    bool    `json:"scaled"` // charge full-scene work via ScaledParams
	Trace     bool    `json:"trace"`  // record the run's virtual-time events for /jobs/{id}/trace
	Label     string  `json:"label"`
	NoCache   bool    `json:"no_cache"`
	// Checkpoint enables round-boundary checkpointing: retries (and,
	// with -journal, post-restart re-runs) resume from the last completed
	// round instead of round zero. Implied for fault jobs that can retry
	// or recover. Checkpointed jobs bypass the result cache.
	Checkpoint bool `json:"checkpoint"`
	// Balance schedules the job's parallel phases demand-driven: chunks
	// granted on request, sized by an online per-rank throughput
	// estimate. Outputs are identical to the static schedule; timings and
	// the result's balance accounting change.
	Balance bool          `json:"balance"`
	Scene   sceneRequest  `json:"scene"`
	Faults  *faultRequest `json:"faults"`
}

// faultRequest injects a deterministic failure plan into the run: either
// explicit events or a seeded random plan, plus the scheduler's retry
// budget and an optional degraded-mode recovery switch. Fault jobs bypass
// the result cache — chaos runs exist to exercise the failure path.
type faultRequest struct {
	Crashes       []hyperhet.FaultCrash    `json:"crashes"`
	LinkSlowdowns []hyperhet.FaultLinkSlow `json:"link_slowdowns"`
	Degradations  []hyperhet.FaultDegrade  `json:"degradations"`
	Seed          int64                    `json:"seed"`         // nonzero: generate a random plan instead
	MaxAttempts   int                      `json:"max_attempts"` // scheduler retry budget (0 = default)
	Recovery      bool                     `json:"recovery"`     // in-run degraded-mode recovery on worker death
}

// sceneRequest selects the synthetic scene; zero values take the reduced
// WTC defaults.
type sceneRequest struct {
	Lines   int     `json:"lines"`
	Samples int     `json:"samples"`
	Bands   int     `json:"bands"`
	Seed    int64   `json:"seed"`
	SNRdB   float64 `json:"snr_db"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Draining never un-drains: the Retry-After points clients at the
		// window in which a replacement instance should be serving.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	// Read the raw document before decoding: the verbatim body is what the
	// journal records, so a restarted server re-parses exactly what the
	// client sent.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var req submitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, sceneCfg, err := parseSubmit(&req)
	if err != nil {
		s.logger.Warn("submit rejected", "error", err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.defaultBalance {
		spec.Balance = true
	}
	// Materialize the (validated, size-capped) scene only after the whole
	// request parsed: parseSubmit allocates nothing.
	entry, _, err := s.scene(sceneCfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec.Cube = entry.sc.Cube
	spec.CubeDigest = entry.digest
	if req.Scaled {
		spec.Params = hyperhet.ScaledParams(spec.Params, sceneCfg)
	}
	if s.journal != nil {
		spec.JournalPayload = body
	}
	// Jobs outlive the submit request: derive from Background, not
	// r.Context(), which dies as soon as this handler returns.
	job, err := s.sched.Submit(context.Background(), spec)
	switch {
	// Breaker denials before generic sheds: a ShedError matches both
	// sentinels, and an open breaker is the backend's problem (503), not
	// the client's rate (429).
	case errors.Is(err, hyperhet.ErrBreakerOpen):
		setRetryAfter(w, err)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, hyperhet.ErrShed), errors.Is(err, hyperhet.ErrQueueFull):
		setRetryAfter(w, err)
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, hyperhet.ErrSchedulerClosed):
		setRetryAfter(w, err)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.logger.Info("job submitted", "id", job.ID(), "mode", spec.Mode, "algorithm", spec.Algorithm, "priority", spec.Priority.String())
	writeJSON(w, http.StatusAccepted, job.Status())
}

// parseSubmit resolves a submit request into a scheduler JobSpec plus the
// scene configuration to materialize. It is pure — no allocation beyond
// the spec, no scene generation — so the fuzzer drives it directly with
// arbitrary decoded requests; every malformed field must surface as an
// error here, never as a panic or an allocation downstream.
func parseSubmit(req *submitRequest) (hyperhet.JobSpec, hyperhet.SceneConfig, error) {
	var spec hyperhet.JobSpec
	sceneCfg, err := parseScene(req.Scene)
	if err != nil {
		return spec, sceneCfg, err
	}

	mode := hyperhet.JobMode(strings.ToLower(req.Mode))
	if req.Mode == "" {
		mode = hyperhet.ModeRun
	}
	spec.Mode = mode

	if mode != hyperhet.ModeAdaptive {
		switch strings.ToLower(req.Algorithm) {
		case "atdca":
			spec.Algorithm = hyperhet.ATDCA
		case "ufcls":
			spec.Algorithm = hyperhet.UFCLS
		case "pct":
			spec.Algorithm = hyperhet.PCT
		case "morph":
			spec.Algorithm = hyperhet.MORPH
		default:
			return spec, sceneCfg, fmt.Errorf("unknown algorithm %q (want atdca, ufcls, pct or morph)", req.Algorithm)
		}
	}
	switch strings.ToLower(req.Variant) {
	case "", "hetero":
		spec.Variant = hyperhet.Hetero
	case "homo":
		spec.Variant = hyperhet.Homo
	default:
		return spec, sceneCfg, fmt.Errorf("unknown variant %q (want hetero or homo)", req.Variant)
	}
	if mode == hyperhet.ModeSequential {
		if req.CycleTime < 0 {
			return spec, sceneCfg, fmt.Errorf("invalid cycle_time %v", req.CycleTime)
		}
		spec.CycleTime = req.CycleTime
	} else {
		net, err := resolveNetwork(req.Network, req.CPUs)
		if err != nil {
			return spec, sceneCfg, err
		}
		spec.Network = net
	}

	pri, err := hyperhet.ParseJobPriority(strings.ToLower(req.Priority))
	if err != nil {
		return spec, sceneCfg, err
	}
	spec.Priority = pri
	if req.TimeoutMS < 0 {
		return spec, sceneCfg, fmt.Errorf("invalid timeout_ms %d", req.TimeoutMS)
	}
	spec.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	spec.Label = req.Label
	spec.NoCache = req.NoCache
	spec.Checkpoint = req.Checkpoint
	spec.Balance = req.Balance

	spec.Params = hyperhet.DefaultParams()
	spec.Params.Trace = req.Trace
	if req.Targets != 0 {
		if req.Targets < 0 {
			return spec, sceneCfg, fmt.Errorf("invalid targets %d", req.Targets)
		}
		spec.Params.Targets = req.Targets
	}
	if req.Classes != 0 {
		if req.Classes < 0 {
			return spec, sceneCfg, fmt.Errorf("invalid classes %d", req.Classes)
		}
		spec.Params.PCT.Classes = req.Classes
		spec.Params.Morph.Classes = req.Classes
	}
	if req.Faults != nil {
		plan := &hyperhet.FaultPlan{
			Crashes:   req.Faults.Crashes,
			LinkSlows: req.Faults.LinkSlowdowns,
			Degrades:  req.Faults.Degradations,
		}
		if req.Faults.Seed != 0 {
			if !plan.Empty() {
				return spec, sceneCfg, fmt.Errorf("faults: give explicit events or a seed, not both")
			}
			if spec.Network == nil {
				return spec, sceneCfg, fmt.Errorf("faults: seeded plans need a networked mode")
			}
			var err error
			plan, err = hyperhet.RandomFaultPlan(req.Faults.Seed, hyperhet.RandomFaultConfig{Ranks: spec.Network.Size()})
			if err != nil {
				return spec, sceneCfg, err
			}
		}
		if req.Faults.MaxAttempts < 0 {
			return spec, sceneCfg, fmt.Errorf("faults: invalid max_attempts %d", req.Faults.MaxAttempts)
		}
		spec.Params.Faults = plan
		spec.Params.Recovery = hyperhet.RecoveryOptions{Enabled: req.Faults.Recovery}
		spec.MaxAttempts = req.Faults.MaxAttempts
		// A fault job that may re-run — scheduler retries or in-run
		// recovery — checkpoints by default, so the second pass resumes
		// instead of recomputing (fault jobs never cache anyway).
		if req.Faults.MaxAttempts > 1 || req.Faults.Recovery {
			spec.Checkpoint = true
		}
	}
	return spec, sceneCfg, nil
}

// scene returns the cached scene for cfg, generating it on first use;
// the second return reports a cache hit.
func (s *server) scene(cfg hyperhet.SceneConfig) (*sceneEntry, bool, error) {
	s.mu.Lock()
	if entry, ok := s.scenes[cfg]; ok {
		s.mu.Unlock()
		return entry, true, nil
	}
	s.mu.Unlock()

	// Generate outside the lock: scenes take real time to synthesize and
	// concurrent submissions must not serialize behind one another. A
	// duplicate generation race just wastes one generation.
	sc, err := hyperhet.GenerateScene(cfg)
	if err != nil {
		return nil, false, fmt.Errorf("scene generation: %w", err)
	}
	entry := &sceneEntry{sc: sc, digest: hyperhet.SchedCubeDigest(sc.Cube)}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.scenes) >= maxCachedScenes {
		// Simple reset beats tracking recency for a cache this small.
		s.scenes = make(map[hyperhet.SceneConfig]*sceneEntry)
	}
	s.scenes[cfg] = entry
	return entry, false, nil
}

// provideScene adapts the server's scene cache to the pipeline engine's
// provider contract.
func (s *server) provideScene(cfg hyperhet.SceneConfig) (*hyperhet.Scene, string, bool, error) {
	entry, cached, err := s.scene(cfg)
	if err != nil {
		return nil, "", false, err
	}
	return entry.sc, entry.digest, cached, nil
}

// parseScene resolves the scene request against the reduced-WTC defaults
// and enforces the server-side size cap before anything is allocated.
// The per-dimension bound keeps the voxel product far from int64
// overflow even on hostile inputs.
func parseScene(req sceneRequest) (hyperhet.SceneConfig, error) {
	cfg := hyperhet.DefaultSceneConfig()
	if req.Lines != 0 {
		cfg.Lines = req.Lines
	}
	if req.Samples != 0 {
		cfg.Samples = req.Samples
	}
	if req.Bands != 0 {
		cfg.Bands = req.Bands
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	if req.SNRdB != 0 {
		cfg.SNRdB = req.SNRdB
	}
	for _, d := range []struct {
		name string
		v    int
	}{{"lines", cfg.Lines}, {"samples", cfg.Samples}, {"bands", cfg.Bands}} {
		if d.v <= 0 || d.v > maxSceneDim {
			return cfg, fmt.Errorf("scene: %s %d out of range [1, %d]", d.name, d.v, maxSceneDim)
		}
	}
	if voxels := int64(cfg.Lines) * int64(cfg.Samples) * int64(cfg.Bands); voxels > maxSceneVoxels {
		return cfg, fmt.Errorf("scene: %d voxels exceeds the server cap of %d", voxels, int64(maxSceneVoxels))
	}
	return cfg, nil
}

func resolveNetwork(name string, cpus int) (*hyperhet.Network, error) {
	switch strings.ToLower(name) {
	case "", "fully-het":
		return hyperhet.FullyHeterogeneous(), nil
	case "fully-homo":
		return hyperhet.FullyHomogeneous(), nil
	case "part-het":
		return hyperhet.PartiallyHeterogeneous(), nil
	case "part-homo":
		return hyperhet.PartiallyHomogeneous(), nil
	case "thunderhead":
		if cpus == 0 {
			cpus = 16
		}
		return hyperhet.Thunderhead(cpus)
	}
	return nil, fmt.Errorf("unknown network %q (want fully-het, fully-homo, part-het, part-homo or thunderhead)", name)
}

// jobResponse decorates the scheduler's status with a result summary.
type jobResponse struct {
	hyperhet.JobStatus
	Result *resultSummary `json:"result,omitempty"`
}

// resultSummary is the compact outcome of a completed run.
type resultSummary struct {
	Network        string  `json:"network"`
	Procs          int     `json:"procs"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	ComSeconds     float64 `json:"com_seconds"`
	SeqSeconds     float64 `json:"seq_seconds"`
	ParSeconds     float64 `json:"par_seconds"`
	ImbalanceDAll  float64 `json:"imbalance_d_all"`
	Targets        int     `json:"targets,omitempty"`
	Classes        int     `json:"classes,omitempty"`
	// Degraded-mode recovery bookkeeping (in-run, distinct from the
	// scheduler-level attempt history in the job status).
	RunAttempts      int     `json:"run_attempts,omitempty"`
	FailedRanks      []int   `json:"failed_ranks,omitempty"`
	RecoveryOverhead float64 `json:"recovery_overhead_seconds,omitempty"`
	// Checkpoint bookkeeping of a checkpointed run: the round the
	// successful attempt resumed from (0 = from scratch), the snapshots
	// written, and the virtual seconds spent on checkpoint I/O.
	ResumedFromRound   int     `json:"resumed_from_round,omitempty"`
	CheckpointSaves    int     `json:"checkpoint_saves,omitempty"`
	CheckpointOverhead float64 `json:"checkpoint_overhead_seconds,omitempty"`
	// Demand-driven scheduling bookkeeping of a balanced run: chunks
	// granted, grants that crossed static share boundaries (and the lines
	// they moved), and the estimator's mean relative prediction error.
	Balanced        bool    `json:"balanced,omitempty"`
	BalanceChunks   int     `json:"balance_chunks,omitempty"`
	StealEvents     int     `json:"steal_events,omitempty"`
	ReassignedLines int     `json:"reassigned_lines,omitempty"`
	EstimatorDrift  float64 `json:"estimator_drift,omitempty"`
}

// maxJobsListing caps GET /jobs responses; pass ?limit= for less.
const maxJobsListing = 500

// handleJobs lists the jobs the scheduler knows — queued, running and
// retained finished — in deterministic order (ascending submit time,
// ties by ID), optionally filtered by ?state= and capped by ?limit=. A
// listing cut short by the cap carries "truncated": true so clients can
// tell a short list from a complete one.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var filter hyperhet.JobState
	if v := r.URL.Query().Get("state"); v != "" {
		switch st := hyperhet.JobState(v); st {
		case hyperhet.JobQueued, hyperhet.JobRunning, hyperhet.JobCompleted,
			hyperhet.JobFailed, hyperhet.JobCancelled:
			filter = st
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown state %q (want queued, running, completed, failed or cancelled)", v))
			return
		}
	}
	limit, ok := parseLimit(w, r, maxJobsListing)
	if !ok {
		return
	}
	statuses := []hyperhet.JobStatus{}
	truncated := false
	for _, job := range s.sched.Jobs() {
		st := job.Status()
		if filter != "" && st.State != filter {
			continue
		}
		if len(statuses) >= limit {
			truncated = true
			break
		}
		statuses = append(statuses, st)
	}
	body := map[string]any{"jobs": statuses, "count": len(statuses)}
	if truncated {
		body["truncated"] = true
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.sched.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp := jobResponse{JobStatus: job.Status()}
	if rep := job.Report(); rep != nil {
		sum := &resultSummary{
			Network:        rep.Network,
			Procs:          rep.Procs,
			VirtualSeconds: rep.WallTime,
			ComSeconds:     rep.Com,
			SeqSeconds:     rep.Seq,
			ParSeconds:     rep.Par,
			ImbalanceDAll:  rep.DAll,
		}
		if rep.Detection != nil {
			sum.Targets = len(rep.Detection.Targets)
		}
		if rep.Classification != nil {
			sum.Classes = len(rep.Classification.Classes)
		}
		if rep.Attempts > 1 {
			sum.RunAttempts = rep.Attempts
			sum.FailedRanks = rep.FailedRanks
			sum.RecoveryOverhead = rep.RecoveryOverhead
		}
		if rep.CheckpointSaves > 0 || rep.ResumedFromRound > 0 {
			sum.ResumedFromRound = rep.ResumedFromRound
			sum.CheckpointSaves = rep.CheckpointSaves
			sum.CheckpointOverhead = rep.CheckpointOverhead
		}
		if rep.Balanced {
			sum.Balanced = true
			sum.BalanceChunks = rep.BalanceChunks
			sum.StealEvents = rep.StealEvents
			sum.ReassignedLines = rep.ReassignedLines
			sum.EstimatorDrift = rep.EstimatorDrift
		}
		resp.Result = sum
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace exports a traced job's virtual-time events as Chrome
// trace-event JSON: load the response in Perfetto (ui.perfetto.dev) or
// chrome://tracing for a per-rank flame view of the simulated run.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, err := s.sched.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	rep := job.Report()
	if rep == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s has no result (state %s)", job.ID(), job.State()))
		return
	}
	if len(rep.TraceEvents) == 0 {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %s was not traced; submit with \"trace\": true", job.ID()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := hyperhet.WriteChromeTrace(w, rep.TraceEvents); err != nil {
		s.logger.Error("trace export failed", "id", job.ID(), "error", err)
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancel requested"})
}

// parseLimit reads a validated positive ?limit= capped at max, writing
// the 400 itself on a bad value. The second return is false after an
// error response.
func parseLimit(w http.ResponseWriter, r *http.Request, max int) (int, bool) {
	limit := max
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("invalid limit %q (want a positive integer)", v))
			return 0, false
		}
		if n < limit {
			limit = n
		}
	}
	return limit, true
}

// statsResponse is the body of GET /stats.
type statsResponse struct {
	hyperhet.SchedulerStats
	UptimeSeconds float64 `json:"uptime_seconds"`
	ScenesCached  int     `json:"scenes_cached"`
	// Guard snapshots the overload-control layer (adaptive limit, latency
	// baseline, open breakers); absent without -shed/-hedge.
	Guard *hyperhet.GuardState `json:"guard,omitempty"`
	// JournalReplay reports what the boot-time journal replay read and
	// dropped (records folded, torn tails truncated, unknown schema
	// versions and unreadable frames skipped); absent without -journal.
	JournalReplay *hyperhet.SchedReplayStats `json:"journal_replay,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	scenes := len(s.scenes)
	s.mu.Unlock()
	resp := statsResponse{
		SchedulerStats: s.sched.Stats(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		ScenesCached:   scenes,
		JournalReplay:  s.replayStats,
	}
	if s.sched.Guard() != nil {
		gs := s.sched.GuardState()
		resp.Guard = &gs
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// setRetryAfter advertises the suggested client back-off for a denied
// submission. Retry-After is integer seconds; sub-second hints round up
// to 1 rather than down to an immediate (and certainly futile) retry.
func setRetryAfter(w http.ResponseWriter, err error) {
	d, ok := hyperhet.RetryAfterHint(err)
	if !ok {
		return
	}
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}
