package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hyperhet "repro"
)

// fanoutPipeline is the acceptance pipeline: one scene feeding an
// ATDCA + UFCLS + PCT + MORPH fan-out, folded by a synthesis stage —
// Table 3 and Table 4 as one submission.
const fanoutPipeline = `{
	"name": "table3+4",
	"stages": [
		{"name": "scene", "kind": "scene",
		 "scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3}},
		{"name": "atdca", "kind": "analyze", "after": ["scene"],
		 "job": {"algorithm": "atdca", "mode": "sequential", "targets": 4}},
		{"name": "ufcls", "kind": "analyze", "after": ["scene"],
		 "job": {"algorithm": "ufcls", "mode": "sequential", "targets": 4}},
		{"name": "pct", "kind": "analyze", "after": ["scene"],
		 "job": {"algorithm": "pct", "mode": "sequential"}},
		{"name": "morph", "kind": "analyze", "after": ["scene"],
		 "job": {"algorithm": "morph", "mode": "sequential"}},
		{"name": "report", "kind": "synthesize",
		 "after": ["atdca", "ufcls", "pct", "morph"]}
	]
}`

// waitPipelineSettled polls GET /pipelines/{id} until the state is final.
func waitPipelineSettled(t *testing.T, baseURL, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, doc := getJSON(t, baseURL+"/pipelines/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pipeline status = %d: %v", resp.StatusCode, doc)
		}
		switch doc["state"] {
		case "completed", "failed", "cancelled":
			return doc
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("pipeline %s never settled", id)
	return nil
}

func pipelineStages(t *testing.T, doc map[string]any) map[string]map[string]any {
	t.Helper()
	raw, _ := doc["stages"].([]any)
	out := make(map[string]map[string]any, len(raw))
	for _, r := range raw {
		st, _ := r.(map[string]any)
		name, _ := st["name"].(string)
		out[name] = st
	}
	return out
}

// The acceptance criterion: a 4-way fan-out over one shared scene
// completes via POST /pipelines with exactly one scene generation, and a
// resubmission reports per-stage cache hits.
func TestPipelineFanoutOverHTTP(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{Workers: 4, QueueDepth: 32})

	resp, doc := postJSON(t, ts.URL+"/pipelines", fanoutPipeline)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pipeline submit = %d %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("no pipeline id in %v", doc)
	}

	final := waitPipelineSettled(t, ts.URL, id)
	if final["state"] != "completed" {
		t.Fatalf("pipeline settled as %v (error %v)", final["state"], final["error"])
	}
	if n, _ := final["stages_completed"].(float64); n != 6 {
		t.Fatalf("stages_completed = %v, want 6", final["stages_completed"])
	}
	// Exactly one scene generation: the four analyze stages share it.
	_, stats := getJSON(t, ts.URL+"/stats")
	if n, _ := stats["scenes_cached"].(float64); n != 1 {
		t.Fatalf("scenes_cached = %v, want 1", stats["scenes_cached"])
	}
	stages := pipelineStages(t, final)
	syn, _ := stages["report"]["synthesis"].(map[string]any)
	if syn == nil {
		t.Fatalf("synthesize stage carries no synthesis: %v", stages["report"])
	}
	det, _ := syn["detection"].(map[string]any)
	cls, _ := syn["classification"].(map[string]any)
	if len(det) != 2 || len(cls) != 2 {
		t.Fatalf("synthesis folded %d detection + %d classification entries, want 2 + 2", len(det), len(cls))
	}
	if tvs, _ := syn["total_virtual_seconds"].(float64); tvs <= 0 {
		t.Fatalf("total_virtual_seconds = %v, want > 0", syn["total_virtual_seconds"])
	}

	// Resubmission: every analyze stage rides the result cache and the
	// scene comes from the server cache — five hits, zero fresh seconds.
	resp, doc = postJSON(t, ts.URL+"/pipelines", fanoutPipeline)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second pipeline submit = %d %v", resp.StatusCode, doc)
	}
	id2, _ := doc["id"].(string)
	final2 := waitPipelineSettled(t, ts.URL, id2)
	if final2["state"] != "completed" {
		t.Fatalf("second pipeline settled as %v", final2["state"])
	}
	if hits, _ := final2["cache_hits"].(float64); hits != 5 {
		t.Fatalf("cache_hits = %v, want 5 (scene + 4 analyze stages)", final2["cache_hits"])
	}
	if vs, _ := final2["virtual_seconds"].(float64); vs != 0 {
		t.Fatalf("fresh virtual_seconds = %v, want 0 on a fully memoized rerun", final2["virtual_seconds"])
	}
	for _, name := range []string{"atdca", "ufcls", "pct", "morph"} {
		st := pipelineStages(t, final2)[name]
		if hit, _ := st["from_cache"].(bool); !hit {
			t.Fatalf("stage %s missed the result cache on resubmission: %v", name, st)
		}
	}

	// The listing shows both, oldest first.
	resp, doc = getJSON(t, ts.URL+"/pipelines")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipelines listing = %d", resp.StatusCode)
	}
	if n, _ := doc["count"].(float64); n != 2 {
		t.Fatalf("listed %v pipelines, want 2", doc["count"])
	}
}

func TestPipelineRejectsBadRequests(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})
	cases := []struct {
		name, body, wantSub string
	}{
		{"not json", `{"stages": `, "bad request body"},
		{"unknown field", `{"pipeline": []}`, "bad request body"},
		{"no stages", `{"stages": []}`, "no stages"},
		{"self loop", `{"stages": [
			{"name": "a", "kind": "analyze", "after": ["a"],
			 "job": {"algorithm": "atdca", "mode": "sequential"}}]}`, "depends on itself"},
		{"cycle", `{"stages": [
			{"name": "s", "kind": "scene"},
			{"name": "a", "kind": "analyze", "after": ["s"], "job": {"algorithm": "atdca", "mode": "sequential"}},
			{"name": "x", "kind": "synthesize", "after": ["a", "y"]},
			{"name": "y", "kind": "synthesize", "after": ["a", "x"]}]}`, "cycle"},
		{"duplicate stage", `{"stages": [
			{"name": "s", "kind": "scene"},
			{"name": "s", "kind": "scene"}]}`, "duplicate stage name"},
		{"type mismatch", `{"stages": [
			{"name": "s", "kind": "scene"},
			{"name": "z", "kind": "synthesize", "after": ["s"]}]}`, "not a run report"},
		{"unknown kind", `{"stages": [{"name": "w", "kind": "mystery"}]}`, "unknown kind"},
		{"analyze without job", `{"stages": [
			{"name": "s", "kind": "scene"},
			{"name": "a", "kind": "analyze", "after": ["s"]}]}`, "needs a job"},
		{"job with scene", `{"stages": [
			{"name": "s", "kind": "scene"},
			{"name": "a", "kind": "analyze", "after": ["s"],
			 "job": {"algorithm": "atdca", "mode": "sequential", "scene": {"seed": 9}}}]}`, "upstream stage"},
		{"bad algorithm", `{"stages": [
			{"name": "s", "kind": "scene"},
			{"name": "a", "kind": "analyze", "after": ["s"], "job": {"algorithm": "maybe"}}]}`, "unknown algorithm"},
		{"oversized scene", `{"stages": [
			{"name": "s", "kind": "scene", "scene": {"lines": 65536, "samples": 65536, "bands": 65536}}]}`, "voxels"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, doc := postJSON(t, ts.URL+"/pipelines", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d %v, want 400", resp.StatusCode, doc)
			}
			msg, _ := doc["error"].(string)
			if !strings.Contains(msg, tc.wantSub) {
				t.Fatalf("error %q does not mention %q", msg, tc.wantSub)
			}
		})
	}
}

// Satellite: /jobs and /pipelines query parameters are validated with
// self-documenting error bodies.
func TestListingQueryValidation(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})
	cases := []struct {
		url, wantSub string
	}{
		{"/jobs?limit=-1", "positive integer"},
		{"/jobs?limit=0", "positive integer"},
		{"/jobs?limit=banana", "positive integer"},
		{"/jobs?state=sideways", "want queued, running, completed, failed or cancelled"},
		{"/pipelines?limit=-3", "positive integer"},
		{"/pipelines?state=paused", "want running, completed, failed or cancelled"},
	}
	for _, tc := range cases {
		resp, doc := getJSON(t, ts.URL+tc.url)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", tc.url, resp.StatusCode)
		}
		msg, _ := doc["error"].(string)
		if !strings.Contains(msg, tc.wantSub) {
			t.Fatalf("%s error %q does not mention %q", tc.url, msg, tc.wantSub)
		}
	}
	// Valid params still work.
	resp, _ := getJSON(t, ts.URL+"/jobs?state=completed&limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid jobs query = %d, want 200", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/pipelines?state=running&limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid pipelines query = %d, want 200", resp.StatusCode)
	}
}

func TestPipelineUnknownID(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})
	resp, _ := getJSON(t, ts.URL+"/pipelines/pipe-404")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown pipeline = %d, want 404", resp.StatusCode)
	}
}

// slowPipeline has enough analyze work that a 1-worker server is still
// mid-pipeline when the drain hits.
const slowPipeline = `{
	"name": "slow",
	"stages": [
		{"name": "scene", "kind": "scene",
		 "scene": {"lines": 96, "samples": 64, "bands": 32, "seed": 5}},
		{"name": "atdca", "kind": "analyze", "after": ["scene"],
		 "job": {"algorithm": "atdca", "mode": "sequential", "targets": 8}},
		{"name": "ufcls", "kind": "analyze", "after": ["scene"],
		 "job": {"algorithm": "ufcls", "mode": "sequential", "targets": 8}},
		{"name": "pct", "kind": "analyze", "after": ["scene"],
		 "job": {"algorithm": "pct", "mode": "sequential"}},
		{"name": "morph", "kind": "analyze", "after": ["scene"],
		 "job": {"algorithm": "morph", "mode": "sequential"}},
		{"name": "report", "kind": "synthesize",
		 "after": ["atdca", "ufcls", "pct", "morph"]}
	]
}`

// The restart-resume acceptance criterion: kill mid-pipeline, restart
// with the same journal, and the pipeline completes without re-running
// its journal-recorded completed stages.
func TestJournalRestartResumesPipeline(t *testing.T) {
	dir := t.TempDir()
	cfg := hyperhet.SchedulerConfig{Workers: 1, QueueDepth: 32}

	srv1, err := newServer(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.routes())

	resp, doc := postJSON(t, ts1.URL+"/pipelines", slowPipeline)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pipeline submit = %d %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)

	// Wait until at least one analyze stage completed (in-process poll:
	// HTTP can be starved on a loaded box) but the pipeline has not.
	p1, err := srv1.flow.Pipeline(id)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := p1.Status()
		if st.State != "running" {
			t.Fatalf("pipeline settled as %s before the drain could catch it", st.State)
		}
		analyzeDone := 0
		for _, ss := range st.Stages {
			if ss.Kind == hyperhet.StageAnalyze && ss.State == "completed" {
				analyzeDone++
			}
		}
		if analyzeDone >= 1 && analyzeDone < 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never caught the pipeline mid-flight (%d analyze stages done)", analyzeDone)
		}
		time.Sleep(time.Millisecond)
	}

	// Drain and "crash". While draining, pipeline submissions refuse.
	drained := make(chan struct{})
	go func() { srv1.drain(10 * time.Second); close(drained) }()
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("drain did not finish within its deadline")
	}
	resp, _ = postJSON(t, ts1.URL+"/pipelines", fanoutPipeline)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pipeline submit while drained = %d, want 503", resp.StatusCode)
	}
	ts1.Close()
	completedBefore := 0
	for _, ss := range p1.Status().Stages {
		if ss.State == "completed" && ss.Kind != hyperhet.StageScene {
			completedBefore++
		}
	}
	if completedBefore == 0 {
		t.Fatal("drain caught the pipeline before any stage completed; test setup broken")
	}

	// Restart on the same journal: the pipeline resumes under its
	// original ID with the completed stages restored, not re-run.
	srv2, err := newServer(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.routes())
	defer func() {
		ts2.Close()
		srv2.close()
	}()

	final := waitPipelineSettled(t, ts2.URL, id)
	if final["state"] != "completed" {
		t.Fatalf("resumed pipeline settled as %v (error %v)", final["state"], final["error"])
	}
	if r, _ := final["resumed"].(bool); !r {
		t.Fatal("resumed pipeline not marked resumed")
	}
	if n, _ := final["stages_resumed"].(float64); int(n) < completedBefore {
		t.Fatalf("stages_resumed = %v, want >= %d (completed-before-crash stages must not re-run)",
			final["stages_resumed"], completedBefore)
	}
	stages := pipelineStages(t, final)
	if syn, _ := stages["report"]["synthesis"].(map[string]any); syn == nil {
		t.Fatal("resumed pipeline produced no synthesis")
	}
	// Replay health counters surface in /stats on the journaled boot.
	_, stats := getJSON(t, ts2.URL+"/stats")
	jr, _ := stats["journal_replay"].(map[string]any)
	if jr == nil {
		t.Fatalf("stats missing journal_replay: %v", stats)
	}
	if n, _ := jr["records_replayed"].(float64); n <= 0 {
		t.Fatalf("records_replayed = %v, want > 0", jr["records_replayed"])
	}
}

// A finished pipeline must come back as queryable history after restart.
func TestJournalRestartRestoresFinishedPipeline(t *testing.T) {
	dir := t.TempDir()
	cfg := hyperhet.SchedulerConfig{Workers: 2, QueueDepth: 32}

	srv1, err := newServer(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.routes())
	resp, doc := postJSON(t, ts1.URL+"/pipelines", fanoutPipeline)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pipeline submit = %d %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	if st := waitPipelineSettled(t, ts1.URL, id); st["state"] != "completed" {
		t.Fatalf("pipeline settled as %v", st["state"])
	}
	ts1.Close()
	srv1.drain(10 * time.Second)

	srv2, err := newServer(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.routes())
	defer func() {
		ts2.Close()
		srv2.close()
	}()
	resp, doc = getJSON(t, ts2.URL+"/pipelines/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored pipeline lookup = %d", resp.StatusCode)
	}
	if doc["state"] != "completed" {
		t.Fatalf("restored pipeline state = %v, want completed", doc["state"])
	}
	stages := pipelineStages(t, doc)
	if syn, _ := stages["report"]["synthesis"].(map[string]any); syn == nil {
		t.Fatal("restored pipeline lost its synthesis payload")
	}
	// A fresh submission must not collide with the restored ID.
	resp, doc = postJSON(t, ts2.URL+"/pipelines", fanoutPipeline)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh submit after restore = %d %v", resp.StatusCode, doc)
	}
	if doc["id"] == id {
		t.Fatalf("fresh pipeline reused restored ID %v", id)
	}
	waitPipelineSettled(t, ts2.URL, fmt.Sprint(doc["id"]))
}
