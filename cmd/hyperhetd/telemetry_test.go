package main

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	hyperhet "repro"
)

// tracedJob is tinyJob on a small network with tracing on.
const tracedJob = `{
	"algorithm": "atdca", "network": "fully-het", "targets": 4, "trace": true,
	"scene": {"lines": 24, "samples": 16, "bands": 8, "seed": 3}
}`

// expositionLine matches one sample line of the Prometheus text format.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})

	// One real run, then a cache hit of the same submission.
	for i := 0; i < 2; i++ {
		resp, doc := postJSON(t, ts.URL+"/submit", tinyJob)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d, body %v", resp.StatusCode, doc)
		}
		waitSettled(t, ts.URL, doc["id"].(string))
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// The acceptance set: queue depth, job latency histogram, cache
	// counters, plus the layers underneath.
	for _, want := range []string{
		"hyperhet_sched_queue_depth 0",
		`hyperhet_sched_job_seconds_bucket{class="batch",le="+Inf"} 2`,
		"hyperhet_sched_job_seconds_count",
		`hyperhet_sched_cache_requests_total{result="hit"} 1`,
		`hyperhet_sched_cache_requests_total{result="miss"} 1`,
		"hyperhet_sched_submitted_total 2",
		`hyperhet_core_runs_started_total{algorithm="ATDCA"} 1`,
		"hyperhet_core_virtual_seconds_total",
		`hyperhet_mpi_flops_total{rank="0"}`,
		`hyperhet_log_records_total{level="INFO"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// chromeDoc mirrors the trace-event JSON for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestTraceEndpoint(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})

	resp, doc := postJSON(t, ts.URL+"/submit", tracedJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, doc)
	}
	id := doc["id"].(string)
	job := waitSettled(t, ts.URL, id)
	if job["state"] != "completed" {
		t.Fatalf("job state = %v (%v)", job["state"], job["error"])
	}
	result := job["result"].(map[string]any)
	parSeconds := result["par_seconds"].(float64)

	traceResp, err := http.Get(ts.URL + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", traceResp.StatusCode)
	}
	if ct := traceResp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type = %q", ct)
	}
	var trace chromeDoc
	if err := json.NewDecoder(traceResp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// The acceptance property: the root rank's PAR-category compute plus
	// its idle waits must sum to the report's PAR time (the paper folds
	// root idle into PAR).
	var rootPar float64
	ranks := map[int]bool{}
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		ranks[e.Tid] = true
		if e.Tid == 1 && (e.Cat == "PAR" || e.Cat == "IDLE") {
			rootPar += e.Dur / 1e6
		}
	}
	if math.Abs(rootPar-parSeconds) > 1e-6*math.Max(1, parSeconds) {
		t.Errorf("root PAR+IDLE slices sum to %v s, report says %v s", rootPar, parSeconds)
	}
	// One thread row per rank of the 16-processor network.
	if len(ranks) != 16 {
		t.Errorf("trace covers %d ranks, want 16", len(ranks))
	}
}

func TestTraceEndpointUntracedAndUnknown(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})

	resp, doc := postJSON(t, ts.URL+"/submit", tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := doc["id"].(string)
	waitSettled(t, ts.URL, id)

	r, _ := http.Get(ts.URL + "/jobs/" + id + "/trace")
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("untraced job trace status = %d, want 404", r.StatusCode)
	}
	r, _ = http.Get(ts.URL + "/jobs/job-999/trace")
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace status = %d, want 404", r.StatusCode)
	}
}

func TestPprofBehindFlag(t *testing.T) {
	srv, err := newServer(hyperhet.SchedulerConfig{Workers: 1}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()

	off := httptest.NewServer(srv.routes())
	resp, err := http.Get(off.URL + "/debug/pprof/")
	off.Close()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag: status = %d, want 404", resp.StatusCode)
	}

	srv.enablePprof = true
	on := httptest.NewServer(srv.routes())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof with flag: status %d, body %q", resp.StatusCode, body[:min(len(body), 120)])
	}
}

func TestSceneCapRejectsHugeScenes(t *testing.T) {
	ts := testServer(t, hyperhet.SchedulerConfig{})
	resp, doc := postJSON(t, ts.URL+"/submit", `{
		"algorithm": "atdca", "mode": "sequential",
		"scene": {"lines": 60000, "samples": 60000, "bands": 60000}
	}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge scene status = %d, body %v", resp.StatusCode, doc)
	}
	if msg, _ := doc["error"].(string); !strings.Contains(msg, "voxels") {
		t.Errorf("error %q does not mention the voxel cap", msg)
	}
}
