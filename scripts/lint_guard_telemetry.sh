#!/usr/bin/env bash
# Guard telemetry lint: the hyperhet_guard_* metric names registered by
# the scheduler must exactly match the documented set in DESIGN.md
# ("Overload control" section). Dashboards and alerts are written
# against the documented names, so drift in either direction — a metric
# renamed in code, or documented but never registered — fails CI.
set -euo pipefail

cd "$(dirname "$0")/.."

code=$(grep -rhoE '"hyperhet_guard_[a-z_]+"' internal/sched | tr -d '"' | sort -u)
doc=$(grep -hoE 'hyperhet_guard_[a-z_]+' DESIGN.md | sort -u)

if [ -z "$code" ]; then
  echo "lint: no hyperhet_guard_* metrics registered in internal/sched" >&2
  exit 1
fi
if [ -z "$doc" ]; then
  echo "lint: no hyperhet_guard_* names documented in DESIGN.md" >&2
  exit 1
fi

if ! diff <(printf '%s\n' "$code") <(printf '%s\n' "$doc") >/dev/null; then
  echo "lint: guard telemetry names drifted between internal/sched and DESIGN.md" >&2
  echo "lint: (< registered in code, > documented in DESIGN.md)" >&2
  diff <(printf '%s\n' "$code") <(printf '%s\n' "$doc") >&2 || true
  exit 1
fi

echo "lint: guard telemetry names in sync ($(printf '%s\n' "$code" | wc -l | tr -d ' ') metrics)"
