#!/usr/bin/env bash
# Crash-restart smoke test: start hyperhetd with a journal, SIGTERM it in
# the middle of a checkpointed job, restart it over the same journal, and
# require the job to complete having resumed from a checkpointed round
# (resumed_from_round > 0) instead of recomputing from scratch.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pid=""
cleanup() {
  if [ -n "$pid" ]; then
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/hyperhetd" ./cmd/hyperhetd

# Ask the kernel for a free port instead of squatting on a fixed one, so
# parallel CI jobs (or a developer's own hyperhetd) can't collide with us.
if command -v python3 >/dev/null 2>&1; then
  port=$(python3 -c 'import socket; s = socket.socket(); s.bind(("127.0.0.1", 0)); print(s.getsockname()[1]); s.close()')
else
  port=18099
fi
addr=127.0.0.1:$port
wal="$workdir/journal/journal.wal"

start_server() {
  "$workdir/hyperhetd" -addr "$addr" -workers 1 -journal "$workdir/journal" &
  pid=$!
  for _ in $(seq 1 100); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "smoke: server never became healthy" >&2
  exit 1
}

start_server

# A checkpointed run of ~24 rounds: long enough that the kill below lands
# early in the run on any machine.
id=$(curl -fsS "http://$addr/submit" -d '{
  "algorithm": "atdca", "mode": "run", "network": "fully-het",
  "targets": 24, "checkpoint": true,
  "scene": {"lines": 320, "samples": 128, "bands": 48, "seed": 7}
}' | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "smoke: submit returned no job id" >&2; exit 1; }
echo "smoke: submitted $id"

# Interrupt once at least two rounds are durably checkpointed, so the
# restart has a mid-run snapshot to resume from.
ckpts=0
for _ in $(seq 1 600); do
  ckpts=$( (grep -ao '"type":"checkpointed"' "$wal" 2>/dev/null || true) | wc -l)
  [ "$ckpts" -ge 2 ] && break
  sleep 0.1
done
[ "$ckpts" -ge 2 ] || { echo "smoke: job never checkpointed (records: $ckpts)" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "smoke: drained mid-run after $ckpts checkpoint records"

start_server

state=""
for _ in $(seq 1 3000); do
  state=$(curl -fsS "http://$addr/jobs/$id" 2>/dev/null |
    sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
  [ "$state" = "completed" ] && break
  case "$state" in
    failed|cancelled) echo "smoke: job settled as $state" >&2; exit 1 ;;
  esac
  sleep 0.1
done
[ "$state" = "completed" ] || { echo "smoke: job never completed (state: $state)" >&2; exit 1; }

doc=$(curl -fsS "http://$addr/jobs/$id")
resumed=$(printf '%s' "$doc" | sed -n 's/.*"resumed_from_round": \([0-9]*\).*/\1/p' | head -1)
if [ -z "$resumed" ] || [ "$resumed" -le 0 ]; then
  echo "smoke: resumed_from_round=$resumed, want > 0" >&2
  printf '%s\n' "$doc" >&2
  exit 1
fi
echo "smoke: restarted server resumed $id from round $resumed; OK"

# --- Pipeline leg: kill mid-pipeline, restart, resume without redoing
# completed stages. A single worker serializes four analyze stages over
# one shared scene; the kill lands after at least one stage's completion
# record is durable but before the pipeline's finished record, so the
# restarted server must restore the done stages from the journal
# (stages_resumed > 0) and run only the remainder.

pipe=$(curl -fsS "http://$addr/pipelines" -d '{
  "name": "smoke-fanout",
  "stages": [
    {"name": "scene", "kind": "scene",
     "scene": {"lines": 160, "samples": 96, "bands": 48, "seed": 11}},
    {"name": "atdca", "kind": "analyze", "after": ["scene"],
     "job": {"algorithm": "atdca", "mode": "run", "network": "fully-het", "targets": 18}},
    {"name": "ufcls", "kind": "analyze", "after": ["scene"],
     "job": {"algorithm": "ufcls", "mode": "run", "network": "fully-het", "targets": 18}},
    {"name": "pct", "kind": "analyze", "after": ["scene"],
     "job": {"algorithm": "pct", "mode": "run", "network": "fully-het"}},
    {"name": "morph", "kind": "analyze", "after": ["scene"],
     "job": {"algorithm": "morph", "mode": "run", "network": "fully-het"}},
    {"name": "report", "kind": "synthesize", "after": ["atdca", "ufcls", "pct", "morph"]}
  ]
}' | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -1)
[ -n "$pipe" ] || { echo "smoke: pipeline submit returned no id" >&2; exit 1; }
echo "smoke: submitted pipeline $pipe"

stages=0
for _ in $(seq 1 600); do
  stages=$( (grep -ao '"type":"pipeline_stage"' "$wal" 2>/dev/null || true) | wc -l)
  [ "$stages" -ge 2 ] && break
  sleep 0.1
done
[ "$stages" -ge 2 ] || { echo "smoke: no pipeline stage ever journaled" >&2; exit 1; }
finished=$( (grep -ao '"type":"pipeline_finished"' "$wal" 2>/dev/null || true) | wc -l)
[ "$finished" -eq 0 ] || { echo "smoke: pipeline finished before the kill; enlarge the scene" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "smoke: drained mid-pipeline after $stages stage records"

start_server

pstate=""
for _ in $(seq 1 3000); do
  pstate=$(curl -fsS "http://$addr/pipelines/$pipe" 2>/dev/null |
    sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
  [ "$pstate" = "completed" ] && break
  case "$pstate" in
    failed|cancelled) echo "smoke: pipeline settled as $pstate" >&2; exit 1 ;;
  esac
  sleep 0.1
done
[ "$pstate" = "completed" ] || { echo "smoke: pipeline never completed (state: $pstate)" >&2; exit 1; }

pdoc=$(curl -fsS "http://$addr/pipelines/$pipe")
presumed=$(printf '%s' "$pdoc" | sed -n 's/.*"stages_resumed": \([0-9]*\).*/\1/p' | head -1)
if [ -z "$presumed" ] || [ "$presumed" -lt "$stages" ]; then
  echo "smoke: stages_resumed=$presumed, want >= $stages journaled stages" >&2
  printf '%s\n' "$pdoc" >&2
  exit 1
fi
printf '%s' "$pdoc" | grep -q '"synthesis"' ||
  { echo "smoke: resumed pipeline carries no synthesis payload" >&2; exit 1; }
echo "smoke: restarted server resumed $pipe with $presumed completed stages intact; OK"
