package hyperhet

import (
	"strings"
	"testing"
)

// tinyExperimentConfig shrinks every scene so the full evaluation
// pipeline runs in a few seconds.
func tinyExperimentConfig() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.AccuracyScene = SceneConfig{Lines: 48, Samples: 32, Bands: 64, Seed: 20010916}
	cfg.TimingScene = SceneConfig{Lines: 96, Samples: 16, Bands: 16, Seed: 20010916}
	cfg.ThunderheadScene = SceneConfig{Lines: 64, Samples: 16, Bands: 16, Seed: 20010916}
	cfg.ThunderheadCPUs = []int{1, 4}
	return cfg
}

func TestFacadeTable3AndRender(t *testing.T) {
	r, err := Table3(tinyExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable3(r)
	for _, want := range []string{"Table 3", "'A'", "'G'", "Hetero-ATDCA", "Hetero-UFCLS"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestFacadeTable4AndRender(t *testing.T) {
	r, err := Table4(tinyExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable4(r)
	for _, want := range []string{"Table 4", "Gypsum", "Overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestFacadeNetworkSuiteAndRender(t *testing.T) {
	r, err := NetworkSuite(tinyExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for n, out := range map[string]string{
		"5": RenderTable5(r), "6": RenderTable6(r), "7": RenderTable7(r),
	} {
		if !strings.Contains(out, "Hetero-ATDCA") {
			t.Errorf("table %s missing rows", n)
		}
	}
}

func TestFacadeThunderheadAndRender(t *testing.T) {
	r, err := ThunderheadStudy(tinyExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CPUs) != 2 {
		t.Fatalf("%d cpu counts", len(r.CPUs))
	}
	t8 := RenderTable8(r)
	fig := RenderFigure2(r)
	if !strings.Contains(t8, "Table 8") || !strings.Contains(fig, "Figure 2") {
		t.Error("rendering missing headers")
	}
	for _, alg := range Algorithms {
		if r.Speedups[alg][1] <= 1 {
			t.Errorf("%s speedup at P=4 is %v", alg, r.Speedups[alg][1])
		}
	}
}

func TestFacadeScaledParams(t *testing.T) {
	cfg := SceneConfig{Lines: 100, Samples: 100, Bands: 56}
	p := ScaledParams(DefaultParams(), cfg)
	if p.WorkScale <= 1 || p.DataScale <= 1 {
		t.Errorf("scales not set: %+v", p)
	}
	if p.EquivalentBands != 224 || p.PCT.EquivalentBands != 224 {
		t.Error("equivalent bands not set to the paper's 224")
	}
}
