package hyperhet_test

import (
	"fmt"
	"log"

	hyperhet "repro"
)

// ExampleRun demonstrates the core workflow: generate a scene, pick a
// platform, run an algorithm, read the report. The virtual-time model is
// deterministic, so the output is stable.
func ExampleRun() {
	sc, err := hyperhet.GenerateScene(hyperhet.SceneConfig{
		Lines: 36, Samples: 28, Bands: 16, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := hyperhet.DefaultParams()
	params.Targets = 4
	rep, err := hyperhet.Run(hyperhet.FullyHeterogeneous(),
		hyperhet.ATDCA, hyperhet.Hetero, sc.Cube, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s/%s on %s: %d targets on %d processors\n",
		rep.Algorithm, rep.Variant, rep.Network,
		len(rep.Detection.Targets), rep.Procs)
	// Output:
	// ATDCA/Hetero on fully-heterogeneous: 4 targets on 16 processors
}

// ExampleDetectionScores shows how detections are scored against the
// planted ground truth (the Table 3 measure).
func ExampleDetectionScores() {
	sc, err := hyperhet.GenerateScene(hyperhet.SceneConfig{
		Lines: 64, Samples: 48, Bands: 32, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := hyperhet.DefaultParams()
	params.Targets = 15
	rep, err := hyperhet.RunSequential(0.0072, hyperhet.ATDCA, sc.Cube, params)
	if err != nil {
		log.Fatal(err)
	}
	scores := hyperhet.DetectionScores(sc, rep.Detection)
	hits := 0
	for _, label := range hyperhet.HotSpotLabels {
		if scores[label] < 0.01 {
			hits++
		}
	}
	fmt.Printf("hot spots pinned exactly: %d of %d\n", hits, len(hyperhet.HotSpotLabels))
	// Output:
	// hot spots pinned exactly: 7 of 7
}

// ExampleThunderhead runs the same algorithm on two cluster sizes and
// reports the speedup (the Figure 2 measure).
func ExampleThunderhead() {
	sc, err := hyperhet.GenerateScene(hyperhet.SceneConfig{
		Lines: 64, Samples: 16, Bands: 16, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := hyperhet.ScaledParams(hyperhet.DefaultParams(), sc.Config)
	params.Targets = 6
	var times [2]float64
	for i, p := range []int{1, 16} {
		net, err := hyperhet.Thunderhead(p)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := hyperhet.Run(net, hyperhet.ATDCA, hyperhet.Hetero, sc.Cube, params)
		if err != nil {
			log.Fatal(err)
		}
		times[i] = rep.WallTime
	}
	fmt.Printf("speedup at 16 nodes: %.1fx\n", times[0]/times[1])
	// Output:
	// speedup at 16 nodes: 16.0x
}
