// Pipeline walkthrough: the paper's Table 3 + Table 4 story as ONE
// pipeline submission instead of five separate runs.
//
// A single scene stage generates the WTC-like cube once; four analyze
// stages fan out over it — ATDCA and UFCLS for target detection
// (Table 3), PCT and MORPH for classification (Table 4), all on the
// fully heterogeneous 16-workstation network — and a synthesize stage
// scores every report against the scene's ground truth in one place.
//
// The same spec is then submitted a second time to the same engine:
// every analyze stage comes back from the result cache and the
// pipeline's fresh virtual-seconds bill is zero. For a one-shot run
// without an engine to hold, hyperhet.RunPipeline does the same thing
// on a private scheduler.
package main

import (
	"context"
	"fmt"
	"log"

	hyperhet "repro"
)

func main() {
	s := hyperhet.NewScheduler(hyperhet.SchedulerConfig{Workers: 4, QueueDepth: 16})
	defer s.Close()
	eng, err := hyperhet.NewFlowEngine(hyperhet.FlowConfig{Scheduler: s})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	spec := tableSpec()
	fmt.Printf("pipeline %q: %d stages, one scene, four analyses, one report\n\n",
		spec.Name, len(spec.Stages))

	first := mustRun(eng, spec)
	printStatus("first submission", first)
	printSynthesis(first)

	// Same spec again: the scene provider and the scheduler's result
	// cache remember everything, so nothing is recomputed.
	second := mustRun(eng, spec)
	printStatus("second submission", second)
}

// tableSpec is the Table 3+4 fan-out DAG.
func tableSpec() hyperhet.PipelineSpec {
	analyze := func(alg hyperhet.Algorithm) hyperhet.StageSpec {
		params := hyperhet.DefaultParams()
		params.Targets = 12 // the 32-band demo scene supports fewer endmembers
		return hyperhet.StageSpec{
			Kind:  hyperhet.StageAnalyze,
			After: []string{"scene"},
			Job: hyperhet.JobSpec{
				Mode:      hyperhet.ModeRun,
				Algorithm: alg,
				Variant:   hyperhet.Hetero,
				Network:   hyperhet.FullyHeterogeneous(),
				Params:    params,
			},
		}
	}
	atdca, ufcls, pct, morph := analyze(hyperhet.ATDCA), analyze(hyperhet.UFCLS),
		analyze(hyperhet.PCT), analyze(hyperhet.MORPH)
	atdca.Name, ufcls.Name, pct.Name, morph.Name = "atdca", "ufcls", "pct", "morph"
	return hyperhet.PipelineSpec{
		Name: "table3+4",
		Stages: []hyperhet.StageSpec{
			{Name: "scene", Kind: hyperhet.StageScene,
				Scene: hyperhet.SceneConfig{Lines: 96, Samples: 64, Bands: 32, Seed: 20010916}},
			atdca, ufcls, pct, morph,
			{Name: "report", Kind: hyperhet.StageSynthesize,
				After: []string{"atdca", "ufcls", "pct", "morph"}},
		},
	}
}

func mustRun(eng *hyperhet.FlowEngine, spec hyperhet.PipelineSpec) hyperhet.PipelineStatus {
	p, err := eng.Submit(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	<-p.Done()
	if err := p.Err(); err != nil {
		log.Fatal(err)
	}
	return p.Status()
}

func printStatus(label string, st hyperhet.PipelineStatus) {
	fmt.Printf("%s (%s): %d/%d stages completed, %d cache hits, %.3f fresh virtual seconds\n",
		label, st.ID, st.StagesCompleted, st.StagesTotal, st.CacheHits, st.VirtualSeconds)
	for _, stage := range st.Stages {
		mark := " "
		if stage.FromCache {
			mark = "*"
		}
		fmt.Printf("  %s %-10s %-10s %s", mark, stage.Name, stage.Kind, stage.State)
		if stage.VirtualSeconds > 0 {
			fmt.Printf("  %.3f vsec", stage.VirtualSeconds)
		}
		fmt.Println()
	}
	fmt.Println()
}

func printSynthesis(st hyperhet.PipelineStatus) {
	var synth *hyperhet.Synthesis
	for _, stage := range st.Stages {
		if stage.Synthesis != nil {
			synth = stage.Synthesis
		}
	}
	if synth == nil {
		log.Fatal("no synthesize stage produced output")
	}

	fmt.Println("Table 3 — hot spot -> SAD to nearest detection (0 = exact)")
	for _, label := range hyperhet.HotSpotLabels {
		fmt.Printf("  %s:", label)
		for _, name := range []string{"atdca", "ufcls"} {
			if scores, ok := synth.Detection[name]; ok {
				fmt.Printf("  %s %.4f", name, scores[label])
			}
		}
		fmt.Println()
	}

	fmt.Println("\nTable 4 — classification accuracy against ground truth")
	for _, name := range []string{"pct", "morph"} {
		if score, ok := synth.Classification[name]; ok {
			fmt.Printf("  %-6s overall %.2f%%  kappa %.3f\n",
				name, score.OverallPercent, score.Kappa)
		}
	}

	fmt.Println("\nTiming — virtual seconds per analysis on the fully heterogeneous network")
	for _, t := range synth.Timing {
		fmt.Printf("  %-6s %-5s %-8s procs %2d  %.3f vsec  D_all %.2f\n",
			t.Stage, t.Algorithm, t.Network, t.Procs, t.VirtualSeconds, t.DAll)
	}
	fmt.Printf("  composite analysis cost: %.3f virtual seconds\n\n", synth.TotalVirtualSeconds)
}
