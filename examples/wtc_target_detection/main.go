// WTC target detection: the Table 3 story. Runs both target detection
// algorithms on the synthetic World Trade Center scene and compares how
// well each recovers the seven planted thermal hot spots ('A'..'G',
// 700-1300 F).
//
// The expected outcome mirrors the paper: ATDCA (orthogonal subspace
// projections) pins every hot spot almost exactly, while the error-driven
// UFCLS spends its target budget on pixels the fully constrained mixture
// model cannot explain — deep shadows and turbulent smoke-plume pixels —
// and misses the faint 700 F spot 'F'.
package main

import (
	"fmt"
	"log"

	hyperhet "repro"
)

func main() {
	fmt.Println("generating the synthetic WTC scene (144x96, 64 bands)...")
	sc, err := hyperhet.GenerateScene(hyperhet.DefaultSceneConfig())
	if err != nil {
		log.Fatal(err)
	}

	// t = 18 targets as in the paper; scaled so virtual times reflect the
	// full 2133x512x224 problem.
	params := hyperhet.ScaledParams(hyperhet.DefaultParams(), hyperhet.DefaultSceneConfig())

	fmt.Println("running sequential ATDCA and UFCLS (t=18)...")
	atdca, err := hyperhet.RunSequential(0.0072, hyperhet.ATDCA, sc.Cube, params)
	if err != nil {
		log.Fatal(err)
	}
	ufcls, err := hyperhet.RunSequential(0.0072, hyperhet.UFCLS, sc.Cube, params)
	if err != nil {
		log.Fatal(err)
	}

	sa := hyperhet.DetectionScores(sc, atdca.Detection)
	su := hyperhet.DetectionScores(sc, ufcls.Detection)

	fmt.Printf("\nhot spot  temp(F)  ATDCA SAD  UFCLS SAD\n")
	for _, h := range sc.Truth.HotSpots {
		verdict := ""
		if su[h.Label] > 0.05 {
			verdict = "  <- missed by UFCLS"
		}
		fmt.Printf("   %s      %4.0f     %.4f     %.4f%s\n",
			h.Label, h.TempF, sa[h.Label], su[h.Label], verdict)
	}
	fmt.Printf("\nsingle-processor virtual times: ATDCA %.0f s, UFCLS %.0f s\n",
		atdca.WallTime, ufcls.WallTime)
	fmt.Println("(as in the paper, the dense-projector ATDCA costs more per round)")
}
