// Quickstart: generate a small synthetic hyperspectral scene, run the
// heterogeneous ATDCA target detector on the paper's fully heterogeneous
// 16-workstation network, and print what was found and how long the
// simulated run took.
package main

import (
	"fmt"
	"log"

	hyperhet "repro"
)

func main() {
	// A small AVIRIS-like scene with planted thermal targets.
	sc, err := hyperhet.GenerateScene(hyperhet.SceneConfig{
		Lines: 64, Samples: 48, Bands: 32, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's fully heterogeneous network (Tables 1-2): sixteen
	// workstations of widely different speeds on four communication
	// segments.
	net := hyperhet.FullyHeterogeneous()

	params := hyperhet.DefaultParams()
	params.Targets = 15

	rep, err := hyperhet.Run(net, hyperhet.ATDCA, hyperhet.Hetero, sc.Cube, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Hetero-ATDCA on %s (%d processors)\n", rep.Network, rep.Procs)
	fmt.Printf("virtual time: %.3f s  (COM %.3f, SEQ %.3f, PAR %.3f)\n",
		rep.WallTime, rep.Com, rep.Seq, rep.Par)
	fmt.Printf("load imbalance: D_all %.2f, D_minus %.2f\n\n", rep.DAll, rep.DMinus)

	// How many of the planted thermal hot spots did the detector hit?
	scores := hyperhet.DetectionScores(sc, rep.Detection)
	fmt.Println("hot spot -> SAD to nearest detection (0 = exact)")
	for _, label := range hyperhet.HotSpotLabels {
		fmt.Printf("   %s     -> %.4f\n", label, scores[label])
	}
}
