// Dynamic load balancing: the paper's future-work direction, implemented.
// The adaptive ATDCA starts from equal shares — it is told nothing about
// the platform — and re-partitions between detection rounds from measured
// busy times. Within one round it converges to the balance the WEA
// achieves only when the cycle-times are known and correct.
package main

import (
	"fmt"
	"log"

	hyperhet "repro"
)

func main() {
	cfg := hyperhet.SceneConfig{Lines: 256, Samples: 24, Bands: 32, Seed: 9}
	sc, err := hyperhet.GenerateScene(cfg)
	if err != nil {
		log.Fatal(err)
	}
	params := hyperhet.ScaledParams(hyperhet.DefaultParams(), cfg)
	params.Targets = 12
	net := hyperhet.FullyHeterogeneous()

	// Three schedulers, same platform, same scene.
	static, err := hyperhet.Run(net, hyperhet.ATDCA, hyperhet.Homo, sc.Cube, params)
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := hyperhet.RunAdaptive(net, sc.Cube, params, hyperhet.AdaptiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := hyperhet.Run(net, hyperhet.ATDCA, hyperhet.Hetero, sc.Cube, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ATDCA on the fully heterogeneous network (virtual seconds):")
	fmt.Printf("  equal shares (no platform knowledge)  %10.1f\n", static.WallTime)
	fmt.Printf("  adaptive     (no platform knowledge)  %10.1f\n", adaptive.WallTime)
	fmt.Printf("  WEA oracle   (knows every cycle-time) %10.1f\n", oracle.WallTime)

	fmt.Println("\nadaptive convergence (measured busy-time imbalance per round):")
	for r, imb := range adaptive.Trace.Imbalance {
		marker := ""
		if adaptive.Trace.Rebalanced[r] {
			marker = fmt.Sprintf("  -> re-partitioned, %d rows moved", adaptive.Trace.MovedRows[r])
		}
		fmt.Printf("  round %2d: %6.2f%s\n", r, imb, marker)
	}
	fmt.Println("\nthe first round runs on equal shares and measures the speed spread;")
	fmt.Println("every round after that is WEA-grade balanced, with no prior knowledge.")
}
