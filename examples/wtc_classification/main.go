// WTC classification: the Table 4 story. Classifies the debris field of
// the synthetic World Trade Center scene into the seven USGS dust/debris
// classes with both unsupervised classifiers and scores them against the
// ground-truth class map.
//
// The expected outcome mirrors the paper: the morphological classifier
// (spatial + spectral) beats the PCT classifier (spectral only), because
// its endmembers come from spatially selected pure pixels with purity
// averaging, while PCT classifies in a variance-ranked reduced space with
// single-pixel representatives.
package main

import (
	"fmt"
	"log"

	hyperhet "repro"
)

func main() {
	fmt.Println("generating the synthetic WTC scene and cropping the debris field...")
	sc, err := hyperhet.GenerateScene(hyperhet.DefaultSceneConfig())
	if err != nil {
		log.Fatal(err)
	}
	crop, truth, err := sc.DebrisCrop()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("debris crop: %dx%d pixels, %d bands\n\n", crop.Lines, crop.Samples, crop.Bands)

	// c = 7 classes, I_max = 5 as in the paper; scaled so virtual times
	// reflect the full-size problem.
	params := hyperhet.ScaledParams(hyperhet.DefaultParams(), hyperhet.DefaultSceneConfig())

	run := func(alg hyperhet.Algorithm) (hyperhet.Accuracy, float64) {
		rep, err := hyperhet.RunSequential(0.0072, alg, crop, params)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := hyperhet.ClassificationAccuracy(truth, hyperhet.NumClasses, rep.Classification.Labels)
		if err != nil {
			log.Fatal(err)
		}
		return acc, rep.WallTime
	}

	fmt.Println("running PCT and MORPH (c=7)...")
	pctAcc, pctTime := run(hyperhet.PCT)
	morAcc, morTime := run(hyperhet.MORPH)

	fmt.Printf("\n%-26s %10s %10s\n", "dust/debris class", "PCT", "MORPH")
	for k, name := range hyperhet.ClassNames {
		fmt.Printf("%-26s %9.2f%% %9.2f%%\n", name, 100*pctAcc.PerClass[k], 100*morAcc.PerClass[k])
	}
	fmt.Printf("%-26s %9.2f%% %9.2f%%\n", "Overall", 100*pctAcc.Overall, 100*morAcc.Overall)
	fmt.Printf("\nsingle-processor virtual times: PCT %.0f s, MORPH %.0f s\n", pctTime, morTime)
}
