// Scalability: the Figure 2 story. Runs the heterogeneous MORPH
// classifier on growing subsets of the Thunderhead Beowulf cluster model
// (1 to 256 nodes) and prints the speedup curve, including the overhead
// the overlap borders add when partitions become shallow.
package main

import (
	"fmt"
	"log"
	"strings"

	hyperhet "repro"
)

func main() {
	// A tall scene so that 256 partitions still hold a few lines each,
	// like the paper's 2133-line AVIRIS flight line.
	sc, err := hyperhet.GenerateScene(hyperhet.SceneConfig{
		Lines: 512, Samples: 24, Bands: 32, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Scale the virtual-time model to the paper's full problem size so
	// the compute-to-communication balance matches the real study.
	cfg := hyperhet.SceneConfig{Lines: 512, Samples: 24, Bands: 32, Seed: 7}
	params := hyperhet.ScaledParams(hyperhet.DefaultParams(), cfg)

	cpuCounts := []int{1, 4, 16, 64, 256}
	var t1 float64
	fmt.Printf("%6s %12s %9s  %s\n", "CPUs", "virtual (s)", "speedup", "")
	for _, p := range cpuCounts {
		net, err := hyperhet.Thunderhead(p)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := hyperhet.Run(net, hyperhet.MORPH, hyperhet.Hetero, sc.Cube, params)
		if err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			t1 = rep.WallTime
		}
		speedup := t1 / rep.WallTime
		bar := strings.Repeat("#", int(speedup/4)+1)
		fmt.Printf("%6d %12.2f %9.1f  %s\n", p, rep.WallTime, speedup, bar)
	}
	fmt.Println("\nsub-linear tail: each dilation iteration reaches one line further,")
	fmt.Println("so shallow partitions recompute a growing share of halo rows.")
}
