// Heterogeneity ablation: the Table 5 story in miniature. Runs one
// algorithm with both partitioning strategies across all four evaluation
// networks and shows (a) how the WEA adapts each processor's share to its
// speed, and (b) what ignoring heterogeneity costs.
package main

import (
	"fmt"
	"log"

	hyperhet "repro"
)

func main() {
	sc, err := hyperhet.GenerateScene(hyperhet.SceneConfig{
		Lines: 384, Samples: 24, Bands: 32, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := hyperhet.ScaledParams(hyperhet.DefaultParams(),
		hyperhet.SceneConfig{Lines: 384, Samples: 24, Bands: 32})
	params.Targets = 12

	// Part (a): the workload estimation algorithm's shares on the fully
	// heterogeneous network. Speed-proportional: the Athlon at 0.0026
	// s/Mflop gets ~17x the rows of the UltraSparc at 0.0451.
	fmt.Println("WEA shares on the fully heterogeneous network (speed-proportional):")
	het := hyperhet.FullyHeterogeneous()
	var speedSum float64
	for _, p := range het.Procs {
		speedSum += p.Speed()
	}
	for _, p := range het.Procs {
		share := p.Speed() / speedSum
		fmt.Printf("  p%-2d cycle-time %.4f -> %5.1f%% of the rows\n", p.ID, p.CycleTime, 100*share)
	}

	// Part (b): execution time of both variants on every network.
	fmt.Printf("\n%-26s %14s %14s %8s\n", "network", "Hetero (s)", "Homo (s)", "ratio")
	for _, net := range hyperhet.UMDNetworks() {
		hetRep, err := hyperhet.Run(net, hyperhet.ATDCA, hyperhet.Hetero, sc.Cube, params)
		if err != nil {
			log.Fatal(err)
		}
		homRep, err := hyperhet.Run(net, hyperhet.ATDCA, hyperhet.Homo, sc.Cube, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %14.2f %14.2f %7.1fx\n",
			net.Name, hetRep.WallTime, homRep.WallTime, homRep.WallTime/hetRep.WallTime)
	}
	fmt.Println("\nthe equal-share version pays the slowest processor's bill on any")
	fmt.Println("heterogeneous platform; WEA stays near-optimal everywhere (Table 5).")
}
